//! Fixed-point money for the SSD pricing model.
//!
//! In the SSD (subscriber-specified delay) scenario every subscription offers
//! a price that the system earns for each valid (on-time) message delivered
//! to it (paper §4.1, expression 2). Prices are small integers in the paper
//! ({3, 2, 1}); we store money in integer **milli-units** so that earnings of
//! long simulation runs accumulate without floating-point drift and compare
//! exactly across strategies.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// Number of milli-units per whole unit of currency.
const MILLIS_PER_UNIT: i64 = 1_000;

/// The price a subscriber pays per valid message (non-negative).
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Price(i64);

impl Price {
    /// The zero price (used for the PSD scenario where every delivery counts equally
    /// the caller usually uses [`Price::unit`] instead).
    pub const ZERO: Price = Price(0);

    /// A price of exactly one unit — the value used when applying the SSD
    /// machinery to the PSD scenario (paper §5: "set the price ... to be 1").
    pub const fn unit() -> Self {
        Price(MILLIS_PER_UNIT)
    }

    /// Creates a price from a whole number of units.
    pub const fn from_units(units: i64) -> Self {
        Price(units * MILLIS_PER_UNIT)
    }

    /// Creates a price from a raw milli-unit count (the inverse of
    /// [`Price::millis`]), used when folding stored prices back into an
    /// aggregate envelope.
    pub const fn from_millis(millis: i64) -> Self {
        Price(millis)
    }

    /// Adds two prices, saturating at `i64::MAX` milli-units — envelope
    /// earning sums over large edge groups must never wrap.
    pub const fn saturating_add(self, rhs: Price) -> Price {
        Price(self.0.saturating_add(rhs.0))
    }

    /// Creates a price from fractional units, rounding to the nearest milli-unit.
    /// Negative or non-finite input saturates to zero.
    pub fn from_units_f64(units: f64) -> Self {
        if !units.is_finite() || units <= 0.0 {
            return Price::ZERO;
        }
        Price((units * MILLIS_PER_UNIT as f64).round() as i64)
    }

    /// Returns the price in fractional units.
    pub fn as_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_UNIT as f64
    }

    /// Returns the raw milli-unit count.
    pub const fn millis(self) -> i64 {
        self.0
    }

    /// Returns true if the price is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Price {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.as_f64())
    }
}

/// Accumulated earnings of the system (sum of prices of valid deliveries).
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Earning(i64);

impl Earning {
    /// No earnings.
    pub const ZERO: Earning = Earning(0);

    /// Creates an earning amount from whole units.
    pub const fn from_units(units: i64) -> Self {
        Earning(units * MILLIS_PER_UNIT)
    }

    /// Returns the earnings in fractional units.
    pub fn as_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_UNIT as f64
    }

    /// Returns the raw milli-unit count.
    pub const fn millis(self) -> i64 {
        self.0
    }

    /// Adds the price of one more valid delivery.
    pub fn credit(&mut self, price: Price) {
        self.0 += price.0;
    }
}

impl From<Price> for Earning {
    fn from(p: Price) -> Self {
        Earning(p.0)
    }
}

impl Add for Earning {
    type Output = Earning;
    fn add(self, rhs: Earning) -> Earning {
        Earning(self.0 + rhs.0)
    }
}

impl AddAssign for Earning {
    fn add_assign(&mut self, rhs: Earning) {
        self.0 += rhs.0;
    }
}

impl Sub for Earning {
    type Output = Earning;
    fn sub(self, rhs: Earning) -> Earning {
        Earning(self.0 - rhs.0)
    }
}

impl Add<Price> for Earning {
    type Output = Earning;
    fn add(self, rhs: Price) -> Earning {
        Earning(self.0 + rhs.0)
    }
}

impl Mul<u64> for Price {
    type Output = Earning;
    fn mul(self, count: u64) -> Earning {
        Earning(self.0 * count as i64)
    }
}

impl Sum for Earning {
    fn sum<I: Iterator<Item = Earning>>(iter: I) -> Earning {
        iter.fold(Earning::ZERO, |acc, e| acc + e)
    }
}

impl fmt::Display for Earning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.as_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn price_construction() {
        assert_eq!(Price::from_units(3).as_f64(), 3.0);
        assert_eq!(Price::unit().as_f64(), 1.0);
        assert_eq!(Price::from_units_f64(2.5).millis(), 2_500);
        assert_eq!(Price::from_units_f64(-1.0), Price::ZERO);
        assert_eq!(Price::from_units_f64(f64::NAN), Price::ZERO);
        assert!(Price::ZERO.is_zero());
    }

    #[test]
    fn earning_accumulates_exactly() {
        let mut e = Earning::ZERO;
        for _ in 0..1_000 {
            e.credit(Price::from_units_f64(0.1));
        }
        assert_eq!(e.as_f64(), 100.0);
    }

    #[test]
    fn price_millis_round_trip_and_saturating_sum() {
        assert_eq!(Price::from_millis(2_500), Price::from_units_f64(2.5));
        assert_eq!(
            Price::from_units(3).saturating_add(Price::from_units(2)),
            Price::from_units(5)
        );
        let huge = Price::from_millis(i64::MAX);
        assert_eq!(huge.saturating_add(Price::unit()), huge);
    }

    #[test]
    fn price_times_count() {
        let e = Price::from_units(2) * 7;
        assert_eq!(e.as_f64(), 14.0);
    }

    #[test]
    fn earning_arithmetic() {
        let a = Earning::from_units(5);
        let b = Earning::from_units(3);
        assert_eq!((a + b).as_f64(), 8.0);
        assert_eq!((a - b).as_f64(), 2.0);
        assert_eq!((a + Price::from_units(1)).as_f64(), 6.0);
        let total: Earning = vec![a, b].into_iter().sum();
        assert_eq!(total.as_f64(), 8.0);
    }

    #[test]
    fn ordering_and_display() {
        assert!(Price::from_units(1) < Price::from_units(2));
        assert_eq!(Price::from_units(2).to_string(), "2.000");
        assert_eq!(Earning::from_units(2).to_string(), "2.000");
    }
}
