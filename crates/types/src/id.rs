//! Strongly-typed identifiers for the entities of a pub/sub system.
//!
//! Every participant of the paper's system model gets its own newtype so that
//! a broker index can never be confused with a subscriber index at compile
//! time. All identifiers are plain `u32` indices: the simulator allocates
//! them densely which lets downstream code use them directly as `Vec`
//! indices.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an identifier from a raw index.
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw index backing this identifier.
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// Returns the identifier as a `usize`, convenient for vector indexing.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }

        impl From<usize> for $name {
            fn from(raw: usize) -> Self {
                Self(raw as u32)
            }
        }
    };
}

define_id!(
    /// Identifier of a message broker (a node of the overlay network).
    BrokerId,
    "B"
);
define_id!(
    /// Identifier of an information publisher attached to an edge broker.
    PublisherId,
    "P"
);
define_id!(
    /// Identifier of an information subscriber attached to an edge broker.
    SubscriberId,
    "S"
);
define_id!(
    /// Identifier of a subscription registered by a subscriber.
    SubscriptionId,
    "F"
);
define_id!(
    /// Identifier of a directed overlay link between two brokers.
    LinkId,
    "L"
);

/// Identifier of a published message.
///
/// Messages are numbered globally in publication order, which makes the
/// identifier usable as a FIFO tie-breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MessageId(pub u64);

impl MessageId {
    /// Creates a message identifier from a raw sequence number.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw sequence number.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

impl From<u64> for MessageId {
    fn from(raw: u64) -> Self {
        Self(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(BrokerId::new(3).to_string(), "B3");
        assert_eq!(PublisherId::new(0).to_string(), "P0");
        assert_eq!(SubscriberId::new(159).to_string(), "S159");
        assert_eq!(SubscriptionId::new(7).to_string(), "F7");
        assert_eq!(LinkId::new(12).to_string(), "L12");
        assert_eq!(MessageId::new(42).to_string(), "M42");
    }

    #[test]
    fn raw_round_trips() {
        let b = BrokerId::from(9u32);
        assert_eq!(b.raw(), 9);
        assert_eq!(b.index(), 9);
        assert_eq!(u32::from(b), 9);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        let mut set = HashSet::new();
        set.insert(BrokerId::new(1));
        set.insert(BrokerId::new(2));
        set.insert(BrokerId::new(1));
        assert_eq!(set.len(), 2);
        assert!(BrokerId::new(1) < BrokerId::new(2));
    }

    #[test]
    fn message_ids_order_by_publication() {
        assert!(MessageId::new(1) < MessageId::new(2));
        assert_eq!(MessageId::from(5u64).raw(), 5);
    }

    #[test]
    fn usize_conversion() {
        let s = SubscriberId::from(11usize);
        assert_eq!(s.index(), 11);
    }
}
