//! Messages and message heads.
//!
//! A published message consists of a *head* — a small set of attribute/value
//! pairs that content filters are evaluated against — and an opaque payload.
//! Following the paper's delay model the scheduler only ever needs the
//! message size (in kilobytes), its publication time and its
//! publisher-specified delay bound (PSD scenario), all of which live in the
//! [`Message`] metadata.

use crate::id::{MessageId, PublisherId};
use crate::qos::DelayBound;
use crate::time::{Duration, SimTime};
use crate::value::{AttrName, AttrValue};
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The attribute/value pairs of a message head.
///
/// Heads are small (two attributes in the paper's workload, rarely more than
/// a dozen in practice), so a sorted `Vec` of pairs beats a hash map both in
/// memory and in lookup time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MessageHead {
    attrs: Vec<(AttrName, AttrValue)>,
}

impl MessageHead {
    /// Creates an empty head.
    pub fn new() -> Self {
        MessageHead { attrs: Vec::new() }
    }

    /// Creates a head with pre-allocated space for `capacity` attributes.
    pub fn with_capacity(capacity: usize) -> Self {
        MessageHead {
            attrs: Vec::with_capacity(capacity),
        }
    }

    /// Sets an attribute, replacing any previous value with the same name.
    pub fn set(&mut self, name: impl Into<AttrName>, value: impl Into<AttrValue>) -> &mut Self {
        let name = name.into();
        let value = value.into();
        match self.attrs.binary_search_by(|(n, _)| n.cmp(&name)) {
            Ok(pos) => self.attrs[pos].1 = value,
            Err(pos) => self.attrs.insert(pos, (name, value)),
        }
        self
    }

    /// Returns the value of the named attribute, if present.
    pub fn get(&self, name: &str) -> Option<&AttrValue> {
        self.attrs
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|pos| &self.attrs[pos].1)
    }

    /// Returns true when the named attribute is present.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Number of attributes in the head.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Returns true when the head has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Iterates over the attributes in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&AttrName, &AttrValue)> {
        self.attrs.iter().map(|(n, v)| (n, v))
    }
}

impl<N, V> FromIterator<(N, V)> for MessageHead
where
    N: Into<AttrName>,
    V: Into<AttrValue>,
{
    fn from_iter<T: IntoIterator<Item = (N, V)>>(iter: T) -> Self {
        let mut head = MessageHead::new();
        for (n, v) in iter {
            head.set(n, v);
        }
        head
    }
}

impl fmt::Display for MessageHead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (n, v)) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}={v}")?;
        }
        write!(f, "}}")
    }
}

/// A published message.
///
/// Messages are reference-counted ([`Arc`]) by brokers so that a single copy
/// can sit in many output queues at once; cloning a `Message` is cheap
/// because the payload is a [`Bytes`] handle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Message {
    /// Globally unique, publication-ordered identifier.
    pub id: MessageId,
    /// The publisher that produced the message.
    pub publisher: PublisherId,
    /// Simulated time at which the message was published.
    pub publish_time: SimTime,
    /// Size of the message in kilobytes (the paper's unit for transmission rates).
    pub size_kb: f64,
    /// Delay bound attached by the publisher (PSD scenario), if any.
    pub publisher_bound: Option<DelayBound>,
    /// The content-addressable head.
    pub head: MessageHead,
    /// Opaque payload (not inspected by brokers).
    #[serde(skip)]
    pub payload: Bytes,
}

impl Message {
    /// Starts building a message with the given id and publisher.
    pub fn builder(id: MessageId, publisher: PublisherId) -> MessageBuilder {
        MessageBuilder::new(id, publisher)
    }

    /// The delay that has already occurred for this message at time `now` —
    /// the paper's `hdl(m)` (§5.1), obtained "by subtracting the publishing
    /// time of the message from the current time".
    pub fn elapsed(&self, now: SimTime) -> Duration {
        now.duration_since(self.publish_time)
    }

    /// The absolute expiry instant implied by the publisher bound, if any.
    pub fn publisher_deadline(&self) -> Option<SimTime> {
        self.publisher_bound
            .map(|b| self.publish_time + b.duration())
    }

    /// Remaining lifetime with respect to the publisher bound at time `now`.
    /// Returns `None` when the publisher did not specify a bound.
    pub fn remaining_lifetime(&self, now: SimTime) -> Option<Duration> {
        self.publisher_bound
            .map(|b| b.duration().saturating_sub(self.elapsed(now)))
    }

    /// True when the publisher bound (if any) has already been exceeded at `now`.
    pub fn is_expired(&self, now: SimTime) -> bool {
        match self.publisher_deadline() {
            Some(deadline) => now > deadline,
            None => false,
        }
    }
}

/// A shared, immutable handle to a message.
pub type SharedMessage = Arc<Message>;

/// Builder for [`Message`].
#[derive(Debug, Clone)]
pub struct MessageBuilder {
    id: MessageId,
    publisher: PublisherId,
    publish_time: SimTime,
    size_kb: f64,
    publisher_bound: Option<DelayBound>,
    head: MessageHead,
    payload: Bytes,
}

impl MessageBuilder {
    /// Creates a builder with the paper's default message size (50 KB).
    pub fn new(id: MessageId, publisher: PublisherId) -> Self {
        MessageBuilder {
            id,
            publisher,
            publish_time: SimTime::ZERO,
            size_kb: 50.0,
            publisher_bound: None,
            head: MessageHead::new(),
            payload: Bytes::new(),
        }
    }

    /// Sets the publication time.
    pub fn publish_time(mut self, t: SimTime) -> Self {
        self.publish_time = t;
        self
    }

    /// Sets the message size in kilobytes.
    pub fn size_kb(mut self, size: f64) -> Self {
        self.size_kb = size;
        self
    }

    /// Sets the publisher-specified delay bound (PSD scenario).
    pub fn publisher_bound(mut self, bound: DelayBound) -> Self {
        self.publisher_bound = Some(bound);
        self
    }

    /// Adds a head attribute.
    pub fn attr(mut self, name: impl Into<AttrName>, value: impl Into<AttrValue>) -> Self {
        self.head.set(name, value);
        self
    }

    /// Sets the whole head at once.
    pub fn head(mut self, head: MessageHead) -> Self {
        self.head = head;
        self
    }

    /// Sets the payload.
    pub fn payload(mut self, payload: Bytes) -> Self {
        self.payload = payload;
        self
    }

    /// Finishes building the message.
    pub fn build(self) -> Message {
        Message {
            id: self.id,
            publisher: self.publisher,
            publish_time: self.publish_time,
            size_kb: self.size_kb,
            publisher_bound: self.publisher_bound,
            head: self.head,
            payload: self.payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg() -> Message {
        Message::builder(MessageId::new(1), PublisherId::new(0))
            .publish_time(SimTime::from_secs(100))
            .size_kb(50.0)
            .publisher_bound(DelayBound::from_secs(10))
            .attr("A1", 3.5)
            .attr("A2", 7.25)
            .build()
    }

    #[test]
    fn head_set_get_and_replace() {
        let mut head = MessageHead::new();
        head.set("A2", 2.0).set("A1", 1.0);
        assert_eq!(head.len(), 2);
        assert_eq!(head.get("A1").unwrap().as_f64(), Some(1.0));
        head.set("A1", 9.0);
        assert_eq!(head.len(), 2);
        assert_eq!(head.get("A1").unwrap().as_f64(), Some(9.0));
        assert!(head.contains("A2"));
        assert!(!head.contains("A3"));
        assert!(head.get("missing").is_none());
    }

    #[test]
    fn head_iterates_in_name_order() {
        let head: MessageHead = vec![("B", 2.0), ("A", 1.0), ("C", 3.0)]
            .into_iter()
            .collect();
        let names: Vec<&str> = head.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["A", "B", "C"]);
    }

    #[test]
    fn head_display() {
        let head: MessageHead = vec![("A1", 1.0), ("A2", 2.0)].into_iter().collect();
        assert_eq!(head.to_string(), "{A1=1, A2=2}");
        assert!(MessageHead::new().is_empty());
    }

    #[test]
    fn elapsed_and_expiry() {
        let m = msg();
        let now = SimTime::from_secs(104);
        assert_eq!(m.elapsed(now), Duration::from_secs(4));
        assert_eq!(m.remaining_lifetime(now), Some(Duration::from_secs(6)));
        assert!(!m.is_expired(now));
        let later = SimTime::from_secs(111);
        assert!(m.is_expired(later));
        assert_eq!(m.remaining_lifetime(later), Some(Duration::ZERO));
        assert_eq!(m.publisher_deadline(), Some(SimTime::from_secs(110)));
    }

    #[test]
    fn unbounded_message_never_expires() {
        let m = Message::builder(MessageId::new(2), PublisherId::new(1))
            .publish_time(SimTime::from_secs(5))
            .build();
        assert!(!m.is_expired(SimTime::from_secs(1_000_000)));
        assert_eq!(m.remaining_lifetime(SimTime::ZERO), None);
        assert_eq!(m.publisher_deadline(), None);
    }

    #[test]
    fn builder_defaults() {
        let m = Message::builder(MessageId::new(3), PublisherId::new(2)).build();
        assert_eq!(m.size_kb, 50.0);
        assert_eq!(m.publish_time, SimTime::ZERO);
        assert!(m.head.is_empty());
        assert!(m.payload.is_empty());
    }

    #[test]
    fn shared_message_is_cheap_to_clone() {
        let m = Arc::new(msg());
        let m2 = Arc::clone(&m);
        assert_eq!(m2.id, m.id);
        assert_eq!(Arc::strong_count(&m), 2);
    }
}
