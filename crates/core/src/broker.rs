//! The broker state machine.
//!
//! A broker (Fig. 2) receives messages, matches them against its subscription
//! table, delivers matches to locally attached subscribers, and places one
//! copy per relevant downstream neighbour into that neighbour's output queue.
//! Whenever a link becomes free the broker asks the corresponding queue for
//! the next message under the configured scheduling strategy, after purging
//! expired and unlikely messages (§5.4).
//!
//! The broker is a pure state machine: it never advances time and never
//! performs I/O. The discrete-event simulator (and any real transport layer)
//! drives it by calling [`BrokerState::handle_arrival`] and
//! [`BrokerState::next_to_send`].

use crate::config::SchedulerConfig;
use crate::queue::{DropReason, DropRecord, MatchedTarget, OutputQueue, QueuedMessage};
use bdps_filter::scope::ScopeSet;
use bdps_filter::subscription::Subscription;
use bdps_overlay::graph::OverlayGraph;
use bdps_overlay::pathstats::PathStats;
use bdps_overlay::routing::Routing;
use bdps_overlay::sparse::{
    aggregate_scope_dest, read_population, BrokerTable, PopulationHandle, QosEnvelope,
    ResolvedEntry, TableLayout,
};
use bdps_overlay::subtable::{RetargetOutcome, SubTableEntry};
use bdps_types::id::{BrokerId, LinkId, SubscriberId, SubscriptionId};
use bdps_types::message::Message;
use bdps_types::money::Price;
use bdps_types::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// A delivery to a subscriber attached to this broker.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalDelivery {
    /// The subscription that matched.
    pub subscription: SubscriptionId,
    /// The subscriber that owns it.
    pub subscriber: SubscriberId,
    /// The price this delivery earns if it is on time.
    pub price: Price,
    /// End-to-end delay experienced by the message.
    pub delay: Duration,
    /// The effective allowed delay for this (message, subscription) pair.
    pub allowed_delay: Duration,
    /// Whether the delivery met its bound (`delay ≤ allowed_delay`).
    pub on_time: bool,
}

/// The outcome of processing one arriving message.
#[derive(Debug, Clone, Default)]
pub struct ArrivalOutcome {
    /// Deliveries to local subscribers.
    pub local: Vec<LocalDelivery>,
    /// Neighbours for which a copy was enqueued.
    pub enqueued_to: Vec<BrokerId>,
}

/// The outcome of asking a queue for its next transmission.
#[derive(Debug, Clone, Default)]
pub struct NextSend {
    /// The message to transmit, if any survived purging.
    pub message: Option<QueuedMessage>,
    /// Messages dropped by the invalid-message detection while selecting.
    pub dropped: Vec<DropRecord>,
}

/// Per-broker counters; `received` across all brokers is the paper's
/// "message number" traffic metric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BrokerCounters {
    /// Messages received (from publishers or upstream brokers).
    pub received: u64,
    /// Copies enqueued towards downstream neighbours.
    pub enqueued: u64,
    /// Copies handed to the link layer for transmission.
    pub sent: u64,
    /// Copies dropped because every target had expired.
    pub dropped_expired: u64,
    /// Copies dropped because no target had a success probability ≥ ε.
    pub dropped_unlikely: u64,
    /// Copies dropped because every remaining target unsubscribed mid-run.
    pub dropped_unsubscribed: u64,
    /// Copies put back into an output queue after their link failed mid-transfer.
    pub requeued: u64,
    /// Local deliveries that met their deadline.
    pub delivered_on_time: u64,
    /// Local deliveries that missed their deadline.
    pub delivered_late: u64,
    /// Local deliveries resolved by expanding a covering aggregate at this
    /// edge broker — non-zero only under [`TableLayout::Sparse`], where
    /// interior brokers route on aggregates and only edge brokers expand to
    /// concrete subscribers.
    pub expanded_at_edge: u64,
    /// Aggregate-scoped copies that crossed at least one link to this edge
    /// broker and then expanded to **zero** member matches — the traffic a
    /// cover's false positive actually cost. Non-zero only under
    /// aggregate-scoped forwarding.
    pub false_positive_forwards: u64,
    /// Aggregate expansions at this edge broker that produced zero member
    /// matches (including publisher-local ones that never crossed a link).
    /// Always ≥ `false_positive_forwards`.
    pub false_positive_drops_at_edge: u64,
}

impl BrokerCounters {
    /// Copies dropped for any reason before transmission.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_expired + self.dropped_unlikely + self.dropped_unsubscribed
    }
}

/// The state of one broker.
#[derive(Debug, Clone)]
pub struct BrokerState {
    /// The broker's identifier.
    pub id: BrokerId,
    /// The broker's counters.
    pub counters: BrokerCounters,
    table: BrokerTable,
    queues: HashMap<BrokerId, OutputQueue>,
    config: SchedulerConfig,
}

impl BrokerState {
    /// Creates a broker with explicit outgoing links
    /// (`(neighbour, link, mean ms/KB rate)`). The table may use either
    /// layout ([`SubscriptionTable`](bdps_overlay::subtable::SubscriptionTable)
    /// and [`SparseTable`](bdps_overlay::sparse::SparseTable) both convert).
    pub fn new(
        id: BrokerId,
        table: impl Into<BrokerTable>,
        outgoing: impl IntoIterator<Item = (BrokerId, LinkId, f64)>,
        config: SchedulerConfig,
    ) -> Self {
        let queues = outgoing
            .into_iter()
            .map(|(nb, link, rate)| (nb, OutputQueue::new(nb, link, rate)))
            .collect();
        BrokerState {
            id,
            counters: BrokerCounters::default(),
            table: table.into(),
            queues,
            config,
        }
    }

    /// Creates a broker from the overlay graph: one output queue per outgoing
    /// link, using each link's estimated mean rate for the `FT` estimate.
    pub fn from_overlay(
        graph: &OverlayGraph,
        id: BrokerId,
        table: impl Into<BrokerTable>,
        config: SchedulerConfig,
    ) -> Self {
        let outgoing: Vec<(BrokerId, LinkId, f64)> = graph
            .outgoing(id)
            .map(|l| (l.to, l.id, l.quality.rate_distribution().mean()))
            .collect();
        BrokerState::new(id, table, outgoing, config)
    }

    /// The broker's scheduler configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// The broker's subscription table (either layout).
    pub fn table(&self) -> &BrokerTable {
        &self.table
    }

    /// The downstream neighbours this broker can forward to.
    pub fn neighbors(&self) -> Vec<BrokerId> {
        let mut ns: Vec<BrokerId> = self.queues.keys().copied().collect();
        ns.sort_unstable();
        ns
    }

    /// The output queue towards a neighbour.
    pub fn queue(&self, neighbor: BrokerId) -> Option<&OutputQueue> {
        self.queues.get(&neighbor)
    }

    /// Total number of queued message copies across all output queues.
    pub fn queued_total(&self) -> usize {
        self.queues.values().map(OutputQueue::len).sum()
    }

    /// Re-points a sparse table at a different shared-registry handle (no-op
    /// under the dense layout). Used when a simulation is forked for model
    /// checking: every cloned broker must reference the branch's own
    /// deep-cloned registry (see [`bdps_overlay::sparse::SparseTable::set_population`]).
    pub fn repoint_population(&mut self, population: &PopulationHandle) {
        if let Some(t) = self.table.as_sparse_mut() {
            t.set_population(population);
        }
    }

    /// Hashes the broker's complete logical state — counters, table content
    /// and the exact ordered contents of every output queue (neighbours in
    /// ascending order) — into one `u64`, for the model-checking explorer's
    /// state deduplication.
    pub fn state_digest(&self) -> u64 {
        use std::hash::Hasher as _;
        let mut h = std::collections::hash_map::DefaultHasher::new();
        h.write_u32(self.id.raw());
        let c = &self.counters;
        for v in [
            c.received,
            c.enqueued,
            c.sent,
            c.dropped_expired,
            c.dropped_unlikely,
            c.dropped_unsubscribed,
            c.requeued,
            c.delivered_on_time,
            c.delivered_late,
            c.expanded_at_edge,
            c.false_positive_forwards,
            c.false_positive_drops_at_edge,
        ] {
            h.write_u64(v);
        }
        self.table.digest_into(&mut h);
        for neighbor in self.neighbors() {
            let q = &self.queues[&neighbor];
            h.write_u32(neighbor.raw());
            h.write_usize(q.len());
            for item in q.items() {
                h.write_u64(item.message.id.raw());
                h.write_u64(item.enqueue_time.as_micros());
                h.write_usize(item.targets.len());
                for t in &item.targets {
                    h.write_u32(t.subscription.raw());
                }
            }
        }
        h.finish()
    }

    /// Processes an arriving message: local deliveries plus enqueueing one
    /// copy per relevant downstream neighbour. `now` is the time at which the
    /// processing module finishes (i.e. arrival time plus `PD`).
    pub fn handle_arrival(&mut self, message: Arc<Message>, now: SimTime) -> ArrivalOutcome {
        self.handle_arrival_scoped(message, now, None)
    }

    /// Like [`handle_arrival`](Self::handle_arrival), but restricted to the
    /// given subscriptions.
    ///
    /// Under the paper's single-path routing a message copy forwarded to a
    /// neighbour is responsible for exactly the subscriptions the upstream
    /// broker grouped onto that neighbour; the copy therefore carries that
    /// subscription set and the receiving broker must not re-expand it (doing
    /// so would create duplicate deliveries along alternative mesh paths).
    /// `scope = None` means "all matching subscriptions" and is used when a
    /// raw message enters the system without a precomputed scope.
    ///
    /// **Contract:** a `Some` scope must consist of subscription ids whose
    /// filters matched the message when the scope was frozen (the simulator
    /// freezes it at publication time against the global index). The broker
    /// trusts the scope and does *not* re-match: because a live
    /// subscription's filter never changes, presence in this broker's table
    /// is the only remaining condition, which turns arrival processing into
    /// `O(|scope|)` id lookups — independent of the total population — where
    /// it used to re-match the full table and then intersect linearly.
    pub fn handle_arrival_scoped(
        &mut self,
        message: Arc<Message>,
        now: SimTime,
        scope: Option<&ScopeSet>,
    ) -> ArrivalOutcome {
        self.counters.received += 1;
        let mut outcome = ArrivalOutcome::default();
        let mut local: Vec<ResolvedEntry> = Vec::new();
        // BTreeMap keeps the neighbour groups in ascending broker order, so
        // forwarding work is deterministic without a post-hoc sort. The rows
        // are layout-agnostic [`ResolvedEntry`]s: dense tables copy their
        // materialised entries, sparse tables assemble them from the local
        // table, the shared registry and the per-destination aggregate — in
        // the same order, with the same routed fields, so both layouts feed
        // the scheduling pipeline identical inputs.
        let mut remote: BTreeMap<BrokerId, Vec<ResolvedEntry>> = BTreeMap::new();
        let mut push = |e: ResolvedEntry| match e.next_hop {
            None => local.push(e),
            Some(nb) => remote.entry(nb).or_default().push(e),
        };
        match scope {
            Some(scope) => self.table.resolve_scope(scope, &mut push),
            None => {
                for e in self.table.matching_all(&message.head) {
                    push(e);
                }
            }
        }
        if self.table.layout() == TableLayout::Sparse {
            // Under the sparse layout a local delivery is an aggregate
            // expansion at the edge broker.
            self.counters.expanded_at_edge += local.len() as u64;
        }

        for entry in local {
            let allowed_delay = effective_allowed_delay(&message, entry.allowed_delay);
            let delay = message.elapsed(now);
            let on_time = delay <= allowed_delay;
            if on_time {
                self.counters.delivered_on_time += 1;
            } else {
                self.counters.delivered_late += 1;
            }
            outcome.local.push(LocalDelivery {
                subscription: entry.subscription,
                subscriber: entry.subscriber,
                price: entry.price,
                delay,
                allowed_delay,
                on_time,
            });
        }

        for (neighbor, entries) in remote {
            let Some(queue) = self.queues.get_mut(&neighbor) else {
                // Routing pointed at a neighbour we have no link to; this
                // indicates an inconsistent setup and is simply skipped.
                continue;
            };
            let targets: Vec<MatchedTarget> = entries
                .iter()
                .map(|e| MatchedTarget {
                    subscription: e.subscription,
                    subscriber: e.subscriber,
                    price: e.price,
                    allowed_delay: effective_allowed_delay(&message, e.allowed_delay),
                    stats: e.stats,
                })
                .collect();
            queue.push(QueuedMessage {
                message: Arc::clone(&message),
                targets,
                enqueue_time: now,
            });
            self.counters.enqueued += 1;
            outcome.enqueued_to.push(neighbor);
        }
        outcome.enqueued_to.sort_unstable();
        outcome
    }

    /// Processes an arriving message whose scope consists of **aggregate
    /// sentinels** (see [`bdps_overlay::sparse::aggregate_scope_id`]): one id
    /// per destination edge broker instead of one per subscription — the
    /// aggregate-scoped forwarding hot path.
    ///
    /// A sentinel naming *this* broker expands here, once, at the edge:
    /// the shared registry's group is enumerated, members that joined after
    /// `publish_epoch` are skipped (reproducing the exact mode's
    /// publish-time scope freeze), and each remaining member's filter is
    /// re-matched against the head — so a cover's false positive forwards
    /// traffic but never delivers. A sentinel naming a *remote* destination
    /// is forwarded as-is: one pseudo-target per destination, grouped per
    /// next hop, carrying the aggregate's path stats and the destination
    /// group's **QoS envelope** sampled epoch-consistently
    /// ([`EdgeGroup::envelope_at`](bdps_overlay::sparse::EdgeGroup::envelope_at)
    /// at `publish_epoch`): the target's price is the envelope's earning sum
    /// (the copy's earning upper bound — edge expansion still does the
    /// actual earning) and its allowed delay is the envelope's minimum
    /// member bound tightened by the publisher bound, so strategies rank
    /// aggregate copies by real deadlines/earnings and expiry-based
    /// shedding works in flight. A sentinel whose envelope is empty at the
    /// publish epoch is dropped here: every current member joined after the
    /// snapshot, so edge expansion could deliver to no one.
    ///
    /// `via_link` is true when the copy arrived over a link (false for the
    /// publisher hand-off) and attributes zero-match expansions to
    /// `false_positive_forwards`.
    ///
    /// # Panics
    ///
    /// Panics when the broker uses the dense layout — aggregate forwarding
    /// requires the shared registry.
    pub fn handle_arrival_aggregate(
        &mut self,
        message: Arc<Message>,
        now: SimTime,
        scope: &ScopeSet,
        publish_epoch: u64,
        via_link: bool,
    ) -> ArrivalOutcome {
        self.counters.received += 1;
        let mut outcome = ArrivalOutcome::default();
        let table = self
            .table
            .as_sparse()
            .expect("aggregate forwarding requires the sparse layout");
        let mut local: Vec<ResolvedEntry> = Vec::new();
        // Like handle_arrival_scoped, the BTreeMap keeps neighbour groups in
        // ascending broker order; sentinels are monotone in the destination,
        // so each copy's target list stays ascending too.
        let mut remote: BTreeMap<BrokerId, Vec<MatchedTarget>> = BTreeMap::new();
        {
            let pop = read_population(table.population());
            for id in scope.iter() {
                let Some(dest) = aggregate_scope_dest(id) else {
                    debug_assert!(false, "aggregate scope carries a member id {id}");
                    continue;
                };
                if dest == self.id {
                    let before = local.len();
                    if let Some(group) = pop.group(dest) {
                        for &member in group.ids() {
                            let record = pop.member(member).expect("group member registered");
                            if record.join_epoch > publish_epoch {
                                continue; // joined after the publish snapshot
                            }
                            if !record.subscription.filter.matches(&message.head) {
                                continue;
                            }
                            local.push(ResolvedEntry {
                                subscription: member,
                                subscriber: record.subscription.subscriber,
                                price: record.subscription.price,
                                allowed_delay: record.subscription.allowed_delay(),
                                next_hop: None,
                                next_link: None,
                                stats: PathStats::local(),
                            });
                        }
                    }
                    if local.len() == before {
                        self.counters.false_positive_drops_at_edge += 1;
                        if via_link {
                            self.counters.false_positive_forwards += 1;
                        }
                    }
                } else {
                    let Some(agg) = table.aggregate(dest) else {
                        continue; // group emptied or destination unreachable
                    };
                    let envelope = pop
                        .group(dest)
                        .map(|g| g.envelope_at(publish_epoch))
                        .unwrap_or(QosEnvelope::EMPTY);
                    if envelope.is_empty() {
                        continue; // no epoch-visible member: nothing to deliver
                    }
                    remote.entry(agg.next_hop).or_default().push(MatchedTarget {
                        subscription: id,
                        subscriber: SubscriberId::new(dest.raw()),
                        price: envelope.earning_sum,
                        allowed_delay: effective_allowed_delay(
                            &message,
                            envelope.min_allowed_delay,
                        ),
                        stats: agg.stats,
                    });
                }
            }
        }
        self.counters.expanded_at_edge += local.len() as u64;

        for entry in local {
            let allowed_delay = effective_allowed_delay(&message, entry.allowed_delay);
            let delay = message.elapsed(now);
            let on_time = delay <= allowed_delay;
            if on_time {
                self.counters.delivered_on_time += 1;
            } else {
                self.counters.delivered_late += 1;
            }
            outcome.local.push(LocalDelivery {
                subscription: entry.subscription,
                subscriber: entry.subscriber,
                price: entry.price,
                delay,
                allowed_delay,
                on_time,
            });
        }

        for (neighbor, targets) in remote {
            let Some(queue) = self.queues.get_mut(&neighbor) else {
                continue;
            };
            queue.push(QueuedMessage {
                message: Arc::clone(&message),
                targets,
                enqueue_time: now,
            });
            self.counters.enqueued += 1;
            outcome.enqueued_to.push(neighbor);
        }
        outcome.enqueued_to.sort_unstable();
        outcome
    }

    /// Chooses the next message to transmit towards `neighbor`, applying the
    /// invalid-message detection first.
    pub fn next_to_send(&mut self, neighbor: BrokerId, now: SimTime) -> NextSend {
        let Some(queue) = self.queues.get_mut(&neighbor) else {
            return NextSend::default();
        };
        let dropped = queue.purge(now, &self.config);
        for d in &dropped {
            match d.reason {
                DropReason::Expired => self.counters.dropped_expired += 1,
                DropReason::Unlikely => self.counters.dropped_unlikely += 1,
            }
        }
        let message = queue.pop_next(now, &self.config);
        if message.is_some() {
            self.counters.sent += 1;
        }
        NextSend { message, dropped }
    }

    /// Replaces the broker's subscription table in place, keeping queues and
    /// counters. The simulator calls this after recomputing routes when a
    /// link fails or recovers mid-run.
    pub fn set_table(&mut self, table: impl Into<BrokerTable>) {
        let table = table.into();
        debug_assert_eq!(table.broker(), self.id, "table belongs to another broker");
        self.table = table;
    }

    /// Adds (or replaces) one dense subscription-table entry mid-run — the
    /// incremental half of subscription churn under the dense layout.
    /// Messages already queued are unaffected; messages processed from now
    /// on match the new entry.
    ///
    /// # Panics
    ///
    /// Panics when the broker uses the sparse layout (use
    /// [`insert_local_subscription`](Self::insert_local_subscription) and
    /// [`sync_aggregate`](Self::sync_aggregate) there).
    pub fn insert_subscription(&mut self, entry: SubTableEntry) {
        self.table
            .as_dense_mut()
            .expect("insert_subscription requires the dense layout")
            .insert(entry);
    }

    /// Adds a locally attached subscription's full entry — the edge-broker
    /// half of a join under the sparse layout (interior brokers only sync
    /// their aggregate for the edge).
    ///
    /// # Panics
    ///
    /// Panics when the broker uses the dense layout.
    pub fn insert_local_subscription(&mut self, subscription: Subscription) {
        self.table
            .as_sparse_mut()
            .expect("insert_local_subscription requires the sparse layout")
            .insert_local(subscription);
    }

    /// Patches the dense table entries towards one edge broker after a
    /// routing change (see
    /// [`SubscriptionTable::retarget_entries`](bdps_overlay::subtable::SubscriptionTable::retarget_entries))
    /// — the
    /// incremental alternative to [`set_table`](Self::set_table). Queues and
    /// counters are untouched, exactly like a full table swap.
    ///
    /// # Panics
    ///
    /// Panics when the broker uses the sparse layout (whose analogue is
    /// [`sync_aggregate`](Self::sync_aggregate)).
    pub fn retarget_entries<'a>(
        &mut self,
        routing: &Routing,
        dest: BrokerId,
        attached: impl IntoIterator<Item = &'a Subscription>,
    ) -> RetargetOutcome {
        self.table
            .as_dense_mut()
            .expect("retarget_entries requires the dense layout")
            .retarget_entries(routing, dest, attached)
    }

    /// Brings the sparse aggregate towards `dest` in line with the current
    /// routing and shared registry (see
    /// [`SparseTable::sync_aggregate`](bdps_overlay::sparse::SparseTable::sync_aggregate))
    /// — the sparse analogue of [`retarget_entries`](Self::retarget_entries),
    /// patching one aggregate where the dense path patches one entry per
    /// subscription.
    ///
    /// # Panics
    ///
    /// Panics when the broker uses the dense layout.
    pub fn sync_aggregate(&mut self, routing: &Routing, dest: BrokerId) -> RetargetOutcome {
        self.table
            .as_sparse_mut()
            .expect("sync_aggregate requires the sparse layout")
            .sync_aggregate(routing, dest)
    }

    /// Rebuilds every sparse aggregate from scratch over the current routing
    /// — the sparse analogue of a full table rebuild.
    ///
    /// # Panics
    ///
    /// Panics when the broker uses the dense layout.
    pub fn rebuild_aggregates(&mut self, routing: &Routing) {
        self.table
            .as_sparse_mut()
            .expect("rebuild_aggregates requires the sparse layout")
            .rebuild_aggregates(routing);
    }

    /// Removes a subscription mid-run: drops its materialised table row
    /// (dense entry, or sparse local entry) and strips it from every queued
    /// copy's target set. Copies left with no target are discarded and
    /// counted under `dropped_unsubscribed`; the number of such orphaned
    /// copies is returned. Sparse aggregates are synced separately (they
    /// need routing).
    pub fn remove_subscription(&mut self, id: SubscriptionId) -> u64 {
        self.table.remove(id);
        let orphaned: u64 = self
            .queues
            .values_mut()
            .map(|q| q.remove_subscription(id))
            .sum();
        self.counters.dropped_unsubscribed += orphaned;
        orphaned
    }

    /// Puts a message copy back into the queue towards `neighbor` after a
    /// failed transmission (the link died while the copy was in flight). The
    /// copy keeps its original enqueue time so FIFO-style strategies do not
    /// treat the retry as fresh arrival.
    ///
    /// Returns false — and drops the copy — when no queue towards `neighbor`
    /// exists; callers that believe the queue must exist (the simulator
    /// always requeues towards the link it just popped from) should assert
    /// on the result, because a silently lost copy breaks the transfer
    /// balance that `SimulationOutcome::check_conservation` enforces.
    #[must_use]
    pub fn requeue(&mut self, neighbor: BrokerId, item: QueuedMessage) -> bool {
        match self.queues.get_mut(&neighbor) {
            Some(queue) => {
                queue.push(item);
                self.counters.requeued += 1;
                true
            }
            None => false,
        }
    }

    /// Returns true when the queue towards `neighbor` holds at least one message.
    pub fn has_pending(&self, neighbor: BrokerId) -> bool {
        self.queues
            .get(&neighbor)
            .map(|q| !q.is_empty())
            .unwrap_or(false)
    }
}

/// The effective allowed delay of a (message, subscription) pair: the tighter
/// of the publisher-specified and the subscriber-specified bound.
fn effective_allowed_delay(message: &Message, subscription_allowed: Duration) -> Duration {
    match message.publisher_bound {
        Some(b) => b.duration().min(subscription_allowed),
        None => subscription_allowed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{InvalidDetection, StrategyKind};
    use bdps_filter::filter::Filter;
    use bdps_filter::subscription::Subscription;
    use bdps_net::bandwidth::FixedRate;
    use bdps_net::link::LinkQuality;
    use bdps_overlay::subtable::SubscriptionTable;
    use bdps_overlay::topology::Topology;
    use bdps_stats::rng::SimRng;
    use bdps_types::id::{MessageId, PublisherId};
    use bdps_types::qos::{DelayBound, QosClass};

    fn fixed_quality(_rng: &mut SimRng) -> LinkQuality {
        LinkQuality::new(FixedRate::new(60.0))
    }

    /// Line B0 - B1 - B2; subscriber S0 on B2 (10 s, price 3), S1 on B1
    /// (best effort), S2 on B0 (30 s, price 2).
    struct Setup {
        topo: Topology,
        routing: Routing,
        subs: Vec<(Subscription, BrokerId)>,
    }

    fn setup() -> Setup {
        let mut rng = SimRng::seed_from(1);
        let mut topo = Topology::line(3, &mut rng, fixed_quality);
        topo.graph
            .attach_subscriber(BrokerId::new(2), SubscriberId::new(0));
        topo.graph
            .attach_subscriber(BrokerId::new(1), SubscriberId::new(1));
        topo.graph
            .attach_subscriber(BrokerId::new(0), SubscriberId::new(2));
        let routing = Routing::compute(&topo.graph);
        let subs = vec![
            (
                Subscription::with_qos(
                    SubscriptionId::new(0),
                    SubscriberId::new(0),
                    Filter::paper_conjunction(5.0, 5.0),
                    QosClass::new(DelayBound::from_secs(10), Price::from_units(3)),
                ),
                BrokerId::new(2),
            ),
            (
                Subscription::best_effort(
                    SubscriptionId::new(1),
                    SubscriberId::new(1),
                    Filter::paper_conjunction(9.0, 9.0),
                ),
                BrokerId::new(1),
            ),
            (
                Subscription::with_qos(
                    SubscriptionId::new(2),
                    SubscriberId::new(2),
                    Filter::paper_conjunction(8.0, 8.0),
                    QosClass::new(DelayBound::from_secs(30), Price::from_units(2)),
                ),
                BrokerId::new(0),
            ),
        ];
        Setup {
            topo,
            routing,
            subs,
        }
    }

    fn broker(setup: &Setup, id: u32, strategy: StrategyKind) -> BrokerState {
        let id = BrokerId::new(id);
        let table = SubscriptionTable::build(id, &setup.routing, &setup.subs);
        BrokerState::from_overlay(
            &setup.topo.graph,
            id,
            table,
            SchedulerConfig::paper(strategy),
        )
    }

    fn msg(id: u64, a1: f64, a2: f64, publish_secs: u64) -> Arc<Message> {
        Arc::new(
            Message::builder(MessageId::new(id), PublisherId::new(0))
                .publish_time(SimTime::from_secs(publish_secs))
                .size_kb(50.0)
                .attr("A1", a1)
                .attr("A2", a2)
                .build(),
        )
    }

    #[test]
    fn arrival_delivers_locally_and_enqueues_downstream() {
        let s = setup();
        let mut b0 = broker(&s, 0, StrategyKind::MaxEb);
        let outcome = b0.handle_arrival(msg(1, 1.0, 1.0, 0), SimTime::from_millis(2));
        // Local subscriber S2 matches (filter 8,8); on time.
        assert_eq!(outcome.local.len(), 1);
        assert_eq!(outcome.local[0].subscriber, SubscriberId::new(2));
        assert!(outcome.local[0].on_time);
        // Downstream: S0 and S1 both reached via B1 -> exactly one copy enqueued.
        assert_eq!(outcome.enqueued_to, vec![BrokerId::new(1)]);
        assert_eq!(b0.queued_total(), 1);
        assert_eq!(b0.counters.received, 1);
        assert_eq!(b0.counters.enqueued, 1);
        assert_eq!(b0.counters.delivered_on_time, 1);
        let q = b0.queue(BrokerId::new(1)).unwrap();
        assert_eq!(q.items()[0].targets.len(), 2);
    }

    #[test]
    fn non_matching_message_goes_nowhere() {
        let s = setup();
        let mut b0 = broker(&s, 0, StrategyKind::MaxEb);
        let outcome = b0.handle_arrival(msg(1, 9.5, 9.5, 0), SimTime::from_millis(2));
        assert!(outcome.local.is_empty());
        assert!(outcome.enqueued_to.is_empty());
        assert_eq!(b0.counters.received, 1);
        assert_eq!(b0.queued_total(), 0);
    }

    #[test]
    fn late_local_delivery_is_flagged() {
        let s = setup();
        let mut b0 = broker(&s, 0, StrategyKind::MaxEb);
        // Message published 40 s ago; S2's bound is 30 s.
        let outcome = b0.handle_arrival(msg(1, 1.0, 1.0, 0), SimTime::from_secs(40));
        assert_eq!(outcome.local.len(), 1);
        assert!(!outcome.local[0].on_time);
        assert_eq!(b0.counters.delivered_late, 1);
    }

    #[test]
    fn effective_deadline_takes_publisher_bound_into_account() {
        let s = setup();
        let mut b0 = broker(&s, 0, StrategyKind::MaxEb);
        let m = Arc::new(
            Message::builder(MessageId::new(9), PublisherId::new(0))
                .publish_time(SimTime::ZERO)
                .publisher_bound(DelayBound::from_secs(5))
                .attr("A1", 1.0)
                .attr("A2", 1.0)
                .build(),
        );
        let outcome = b0.handle_arrival(m, SimTime::from_millis(2));
        // Local S2 allowed delay is min(5 s, 30 s) = 5 s.
        assert_eq!(outcome.local[0].allowed_delay, Duration::from_secs(5));
        // Remote targets carry the same effective bound.
        let q = b0.queue(BrokerId::new(1)).unwrap();
        for t in &q.items()[0].targets {
            assert!(t.allowed_delay <= Duration::from_secs(5));
        }
    }

    #[test]
    fn next_to_send_sends_and_counts() {
        let s = setup();
        let mut b0 = broker(&s, 0, StrategyKind::MaxEb);
        b0.handle_arrival(msg(1, 1.0, 1.0, 0), SimTime::from_millis(2));
        b0.handle_arrival(msg(2, 2.0, 2.0, 0), SimTime::from_millis(4));
        assert!(b0.has_pending(BrokerId::new(1)));
        let send = b0.next_to_send(BrokerId::new(1), SimTime::from_millis(10));
        assert!(send.message.is_some());
        assert!(send.dropped.is_empty());
        assert_eq!(b0.counters.sent, 1);
        let send2 = b0.next_to_send(BrokerId::new(1), SimTime::from_millis(12));
        assert!(send2.message.is_some());
        assert!(!b0.has_pending(BrokerId::new(1)));
        let send3 = b0.next_to_send(BrokerId::new(1), SimTime::from_millis(14));
        assert!(send3.message.is_none());
        // Unknown neighbour: graceful empty result.
        let nothing = b0.next_to_send(BrokerId::new(9), SimTime::from_millis(14));
        assert!(nothing.message.is_none());
    }

    #[test]
    fn expired_messages_are_dropped_not_sent() {
        let s = setup();
        let mut b0 = broker(&s, 0, StrategyKind::MaxEb);
        b0.handle_arrival(msg(1, 1.0, 1.0, 0), SimTime::from_millis(2));
        // S0's bound is 10 s and S1 is best-effort, so the queued copy keeps a
        // live target even after a minute; force expiry via a publisher bound.
        let m = Arc::new(
            Message::builder(MessageId::new(2), PublisherId::new(0))
                .publish_time(SimTime::ZERO)
                .publisher_bound(DelayBound::from_secs(5))
                .attr("A1", 1.0)
                .attr("A2", 1.0)
                .build(),
        );
        b0.handle_arrival(m, SimTime::from_millis(4));
        let send = b0.next_to_send(BrokerId::new(1), SimTime::from_secs(60));
        // The publisher-bounded copy is dropped as expired; the other one
        // still has the best-effort target so it is transmitted.
        assert_eq!(send.dropped.len(), 1);
        assert_eq!(send.dropped[0].reason, DropReason::Expired);
        assert_eq!(send.message.as_ref().unwrap().message.id, MessageId::new(1));
        assert_eq!(b0.counters.dropped_expired, 1);
    }

    #[test]
    fn unlikely_messages_are_dropped_under_epsilon_policy() {
        let s = setup();
        // Broker B0 with only the 10 s / price-3 subscription (S0, attached to
        // B2, two hops away). A 50 KB message needs ~6 s on average over the
        // two 60 ms/KB hops, so with only 1 s of budget left the success
        // probability is far below epsilon — but the message is not expired.
        let only_s0 = vec![s.subs[0].clone()];
        let table = SubscriptionTable::build(BrokerId::new(0), &s.routing, &only_s0);
        let mut b0 = BrokerState::from_overlay(
            &s.topo.graph,
            BrokerId::new(0),
            table.clone(),
            SchedulerConfig::paper(StrategyKind::MaxEb),
        );
        let arrived = b0.handle_arrival(msg(1, 1.0, 1.0, 0), SimTime::from_secs(9));
        assert_eq!(arrived.enqueued_to, vec![BrokerId::new(1)]);
        let decision = b0.next_to_send(BrokerId::new(1), SimTime::from_secs(9));
        assert!(decision.message.is_none());
        assert_eq!(decision.dropped.len(), 1);
        assert_eq!(decision.dropped[0].reason, DropReason::Unlikely);
        assert_eq!(b0.counters.dropped_unlikely, 1);

        // With detection off the same message is transmitted anyway.
        let mut b0_off = BrokerState::from_overlay(
            &s.topo.graph,
            BrokerId::new(0),
            table,
            SchedulerConfig::paper(StrategyKind::MaxEb)
                .with_invalid_detection(InvalidDetection::Off),
        );
        b0_off.handle_arrival(msg(2, 1.0, 1.0, 0), SimTime::from_secs(9));
        let decision = b0_off.next_to_send(BrokerId::new(1), SimTime::from_secs(9));
        assert!(decision.message.is_some());
    }

    #[test]
    fn scoped_arrival_restricts_matching() {
        let s = setup();
        // Broker B1 sees all three subscriptions; scope the arrival to S0 only.
        let mut b1 = broker(&s, 1, StrategyKind::MaxEb);
        let scope = ScopeSet::from_sorted(vec![SubscriptionId::new(0)]);
        let outcome =
            b1.handle_arrival_scoped(msg(1, 1.0, 1.0, 0), SimTime::from_millis(2), Some(&scope));
        // S1 is local to B1 but out of scope: no local delivery.
        assert!(outcome.local.is_empty());
        // Only the copy towards B2 (for S0) is enqueued; nothing goes to B0.
        assert_eq!(outcome.enqueued_to, vec![BrokerId::new(2)]);
        let q = b1.queue(BrokerId::new(2)).unwrap();
        assert_eq!(q.items()[0].targets.len(), 1);
        assert_eq!(q.items()[0].targets[0].subscription, SubscriptionId::new(0));
        // An empty scope produces no work at all.
        let outcome = b1.handle_arrival_scoped(
            msg(2, 1.0, 1.0, 0),
            SimTime::from_millis(4),
            Some(&ScopeSet::empty()),
        );
        assert!(outcome.local.is_empty());
        assert!(outcome.enqueued_to.is_empty());
    }

    #[test]
    fn mid_run_subscription_churn_updates_matching_and_queues() {
        let s = setup();
        let mut b0 = broker(&s, 0, StrategyKind::MaxEb);
        // Enqueue a copy serving S0 and S1 (both via B1).
        b0.handle_arrival(msg(1, 1.0, 1.0, 0), SimTime::from_millis(2));
        assert_eq!(b0.queued_total(), 1);
        // S1 leaves: the queued copy keeps serving S0.
        b0.remove_subscription(SubscriptionId::new(1));
        assert_eq!(b0.queued_total(), 1);
        assert_eq!(b0.counters.dropped_unsubscribed, 0);
        // S0 leaves too: the copy is orphaned and discarded.
        b0.remove_subscription(SubscriptionId::new(0));
        assert_eq!(b0.queued_total(), 0);
        assert_eq!(b0.counters.dropped_unsubscribed, 1);
        // Only S2 (local) is left in the table: new arrivals deliver locally
        // and enqueue nothing.
        let outcome = b0.handle_arrival(msg(2, 1.0, 1.0, 0), SimTime::from_millis(4));
        assert_eq!(outcome.local.len(), 1);
        assert!(outcome.enqueued_to.is_empty());
        // A join re-adds S0 and downstream forwarding resumes.
        let entry = s.subs[0].clone();
        let routing = &s.routing;
        let rebuilt = SubscriptionTable::entry_for(b0.id, routing, &entry.0, entry.1).unwrap();
        b0.insert_subscription(rebuilt);
        let outcome = b0.handle_arrival(msg(3, 1.0, 1.0, 0), SimTime::from_millis(6));
        assert_eq!(outcome.enqueued_to, vec![BrokerId::new(1)]);
    }

    #[test]
    fn requeue_counts_and_preserves_the_copy() {
        let s = setup();
        let mut b0 = broker(&s, 0, StrategyKind::Fifo);
        b0.handle_arrival(msg(1, 1.0, 1.0, 0), SimTime::from_millis(2));
        let send = b0.next_to_send(BrokerId::new(1), SimTime::from_millis(10));
        let copy = send.message.unwrap();
        assert_eq!(b0.queued_total(), 0);
        assert!(b0.requeue(BrokerId::new(1), copy));
        assert_eq!(b0.queued_total(), 1);
        assert_eq!(b0.counters.requeued, 1);
        assert_eq!(b0.counters.dropped_total(), 0);
        // Requeueing towards an unknown neighbour is reported, not counted.
        let send = b0.next_to_send(BrokerId::new(1), SimTime::from_millis(12));
        assert!(!b0.requeue(BrokerId::new(9), send.message.unwrap()));
        assert_eq!(b0.counters.requeued, 1);
    }

    #[test]
    fn neighbors_come_from_the_overlay() {
        let s = setup();
        let b1 = broker(&s, 1, StrategyKind::Fifo);
        assert_eq!(b1.neighbors(), vec![BrokerId::new(0), BrokerId::new(2)]);
        assert_eq!(b1.config().strategy, StrategyKind::Fifo);
        assert_eq!(b1.table().stored_rows(), 3);
        assert_eq!(
            b1.table().layout(),
            bdps_overlay::sparse::TableLayout::Dense
        );
    }

    /// Aggregate-scoped arrivals: edge expansion delivers exactly the
    /// epoch-eligible member matches, remote sentinels forward as
    /// pseudo-targets, and zero-match expansions are counted as false
    /// positives.
    #[test]
    fn aggregate_arrival_expands_at_the_edge_and_counts_false_positives() {
        use bdps_overlay::sparse::{aggregate_scope_id, SharedPopulation, SparseTable};
        use std::sync::RwLock;
        let s = setup();
        let pop = Arc::new(RwLock::new(SharedPopulation::from_population(&s.subs)));
        let publish_epoch = pop.read().unwrap().epoch();
        let make = |id: u32| {
            let id = BrokerId::new(id);
            BrokerState::from_overlay(
                &s.topo.graph,
                id,
                SparseTable::build(id, &s.routing, &pop),
                SchedulerConfig::paper(StrategyKind::MaxEb),
            )
        };
        // Scope: all three edge groups (B0, B1, B2), ascending — sentinels
        // are monotone in the destination.
        let scope = ScopeSet::from_sorted(vec![
            aggregate_scope_id(BrokerId::new(0)),
            aggregate_scope_id(BrokerId::new(1)),
            aggregate_scope_id(BrokerId::new(2)),
        ]);

        // Head (1,1) matches every filter. At B0 the self sentinel expands
        // to local S2; the two remote sentinels share the copy towards B1.
        let mut b0 = make(0);
        let outcome = b0.handle_arrival_aggregate(
            msg(1, 1.0, 1.0, 0),
            SimTime::from_millis(2),
            &scope,
            publish_epoch,
            false,
        );
        assert_eq!(outcome.local.len(), 1);
        assert_eq!(outcome.local[0].subscriber, SubscriberId::new(2));
        assert_eq!(outcome.enqueued_to, vec![BrokerId::new(1)]);
        let q = b0.queue(BrokerId::new(1)).unwrap();
        let targets = &q.items()[0].targets;
        assert_eq!(targets.len(), 2);
        assert_eq!(
            targets[0].subscription,
            aggregate_scope_id(BrokerId::new(1))
        );
        assert_eq!(
            targets[1].subscription,
            aggregate_scope_id(BrokerId::new(2))
        );
        // Interior targets are stamped from the destination group's QoS
        // envelope: B1 holds only the best-effort S1 (unbounded, unit
        // price); B2 holds S0 (10 s bound, price 3).
        assert_eq!(targets[0].price, Price::unit());
        assert_eq!(targets[0].allowed_delay, Duration::MAX);
        assert_eq!(targets[1].price, Price::from_units(3));
        assert_eq!(targets[1].allowed_delay, Duration::from_secs(10));
        assert_eq!(b0.counters.expanded_at_edge, 1);
        assert_eq!(b0.counters.false_positive_drops_at_edge, 0);

        // Head (8.5, 8.5) matches only S1 (filter 9,9 at B1). B0's own
        // expansion comes up empty — a false positive, but not a
        // false-positive *forward* because the copy never crossed a link.
        let outcome = b0.handle_arrival_aggregate(
            msg(2, 8.5, 8.5, 0),
            SimTime::from_millis(4),
            &scope,
            publish_epoch,
            false,
        );
        assert!(outcome.local.is_empty());
        assert_eq!(b0.counters.false_positive_drops_at_edge, 1);
        assert_eq!(b0.counters.false_positive_forwards, 0);

        // The same copy arriving at B2 over a link expands to nothing:
        // a counted false-positive forward.
        let remote_scope = ScopeSet::from_sorted(vec![aggregate_scope_id(BrokerId::new(2))]);
        let mut b2 = make(2);
        let outcome = b2.handle_arrival_aggregate(
            msg(2, 8.5, 8.5, 0),
            SimTime::from_millis(6),
            &remote_scope,
            publish_epoch,
            true,
        );
        assert!(outcome.local.is_empty());
        assert!(outcome.enqueued_to.is_empty());
        assert_eq!(b2.counters.false_positive_forwards, 1);
        assert_eq!(b2.counters.false_positive_drops_at_edge, 1);

        // Epoch gating: a publish snapshotted before any member joined
        // delivers to nobody, even though filters match.
        let mut b1 = make(1);
        let outcome = b1.handle_arrival_aggregate(
            msg(3, 1.0, 1.0, 0),
            SimTime::from_millis(8),
            &ScopeSet::from_sorted(vec![aggregate_scope_id(BrokerId::new(1))]),
            0,
            true,
        );
        assert!(outcome.local.is_empty());
        assert_eq!(b1.counters.false_positive_drops_at_edge, 1);
    }

    /// A sparse broker processes the same arrivals into the same deliveries
    /// and queue contents as its dense twin — the broker-level seed of the
    /// engine-wide layout differential oracle.
    #[test]
    fn sparse_broker_matches_dense_broker_on_arrivals() {
        use bdps_overlay::sparse::{SharedPopulation, SparseTable};
        use std::sync::{Arc, RwLock};
        let s = setup();
        let make_dense = |id: u32| broker(&s, id, StrategyKind::MaxEb);
        let pop = Arc::new(RwLock::new(SharedPopulation::from_population(&s.subs)));
        let make_sparse = |id: u32| {
            let id = BrokerId::new(id);
            BrokerState::from_overlay(
                &s.topo.graph,
                id,
                SparseTable::build(id, &s.routing, &pop),
                SchedulerConfig::paper(StrategyKind::MaxEb),
            )
        };
        for id in 0..3u32 {
            let mut dense = make_dense(id);
            let mut sparse = make_sparse(id);
            for (i, (scoped, a1)) in [(false, 1.0), (true, 1.0), (true, 7.0)].iter().enumerate() {
                let m = msg(i as u64, *a1, *a1, 0);
                let scope = ScopeSet::from_unsorted(
                    s.subs
                        .iter()
                        .filter(|(sub, _)| sub.filter.matches(&m.head))
                        .map(|(sub, _)| sub.id)
                        .collect::<Vec<_>>(),
                );
                let now = SimTime::from_millis(2 + i as u64);
                let (a, b) = if *scoped {
                    (
                        dense.handle_arrival_scoped(Arc::clone(&m), now, Some(&scope)),
                        sparse.handle_arrival_scoped(m, now, Some(&scope)),
                    )
                } else {
                    (
                        dense.handle_arrival(Arc::clone(&m), now),
                        sparse.handle_arrival(m, now),
                    )
                };
                assert_eq!(a.local, b.local, "broker {id} arrival {i}");
                assert_eq!(a.enqueued_to, b.enqueued_to, "broker {id} arrival {i}");
            }
            assert_eq!(dense.queued_total(), sparse.queued_total(), "broker {id}");
            for nb in dense.neighbors() {
                let dq = dense.queue(nb).unwrap();
                let sq = sparse.queue(nb).unwrap();
                assert_eq!(dq.items().len(), sq.items().len());
                for (di, si) in dq.items().iter().zip(sq.items().iter()) {
                    assert_eq!(di.targets, si.targets, "broker {id} queue to {nb}");
                }
            }
            // Edge expansions are counted only on the sparse side, and only
            // for locally delivered copies.
            assert_eq!(
                sparse.counters.expanded_at_edge,
                sparse.counters.delivered_on_time + sparse.counters.delivered_late
            );
            assert_eq!(dense.counters.expanded_at_edge, 0);
        }
    }
}
