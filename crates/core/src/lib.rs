//! # bdps-core
//!
//! The paper's primary contribution: message scheduling strategies that let a
//! content-based publish/subscribe overlay deliver as many messages as
//! possible within publisher- or subscriber-specified delay bounds, without
//! inflating network traffic.
//!
//! * [`config`] — scheduler configuration: strategy choice, the EBPC weight
//!   `r`, the invalid-message detection policy (ε), the per-broker processing
//!   delay `PD` and the average message size used for the `FT` estimate;
//! * [`metrics`] — the success probability (eq. 5), Expected Benefit
//!   (eq. 3), delayed Expected Benefit `EB'` (eq. 8), Postponing Cost
//!   (eq. 9) and EBPC (eq. 10) computations;
//! * [`queue`] — per-neighbour output queues of [`QueuedMessage`]s with
//!   strategy-driven selection and expired/unlikely-message purging
//!   (eq. 11);
//! * [`strategy`] — the pluggable scheduling surface: the
//!   [`SchedulingStrategy`] trait (per-item `priority` plus a batch
//!   `score_all` hot-path hook), the five paper strategies (FIFO, minimum
//!   Remaining Lifetime first, maximum EB first, maximum PC first, maximum
//!   EBPC first), the non-paper [`WeightedComposite`] blend, the type-erased
//!   [`StrategyHandle`] threaded through configs/queues/brokers, and the
//!   name-based [`StrategyRegistry`] used by CLI binaries and sweeps.
//!   User-defined strategies implement the trait outside this crate and plug
//!   in through a handle — no core changes required;
//! * [`broker`] — the broker state machine of Fig. 2: matching arrivals
//!   against the subscription table, local delivery, enqueueing to
//!   downstream neighbours and choosing what to send when a link frees up;
//! * [`objective`] — the system objectives: delivery rate (eq. 1) for the
//!   PSD scenario and total earning (eq. 2) for the SSD scenario.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broker;
pub mod config;
pub mod metrics;
pub mod objective;
pub mod queue;
pub mod strategy;

pub use broker::{ArrivalOutcome, BrokerCounters, BrokerState, LocalDelivery, NextSend};
pub use config::{InvalidDetection, SchedulerConfig, StrategyKind};
pub use metrics::{
    expected_benefit, expected_benefit_delayed, max_success_probability, postponing_cost,
    success_probability,
};
pub use objective::ObjectiveTracker;
pub use queue::{DropReason, DropRecord, MatchedTarget, OutputQueue, QueuedMessage};
pub use strategy::{
    Fifo, MaxEb, MaxEbpc, MaxPc, RemainingLifetime, ScheduleContext, SchedulingStrategy,
    StrategyHandle, StrategyRegistry, WeightedComposite,
};

/// Convenience prelude re-exporting the most common items.
pub mod prelude {
    pub use crate::broker::{ArrivalOutcome, BrokerCounters, BrokerState, LocalDelivery, NextSend};
    pub use crate::config::{InvalidDetection, SchedulerConfig, StrategyKind};
    pub use crate::objective::ObjectiveTracker;
    pub use crate::queue::{DropReason, DropRecord, MatchedTarget, OutputQueue, QueuedMessage};
    pub use crate::strategy::{
        ScheduleContext, SchedulingStrategy, StrategyHandle, StrategyRegistry, WeightedComposite,
    };
}
