//! Output queues and the records they hold.
//!
//! Each broker keeps one output queue per downstream neighbour (Fig. 2). A
//! queued message carries the set of *targets* — the matching subscriptions
//! reachable through that neighbour — because every scheduling metric of the
//! paper is a sum over exactly that set.

use crate::config::{InvalidDetection, SchedulerConfig};
use crate::metrics;
use crate::strategy::ScheduleContext;
use bdps_overlay::pathstats::PathStats;
use bdps_types::id::{BrokerId, LinkId, MessageId, SubscriberId, SubscriptionId};
use bdps_types::message::Message;
use bdps_types::money::Price;
use bdps_types::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One subscription a queued message still has to reach via this queue's neighbour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchedTarget {
    /// The subscription's identifier.
    pub subscription: SubscriptionId,
    /// The subscriber that owns it.
    pub subscriber: SubscriberId,
    /// The price paid per valid delivery (`pr`).
    pub price: Price,
    /// The *effective* allowed end-to-end delay for this (message, subscription)
    /// pair: the tighter of the publisher bound and the subscription bound.
    pub allowed_delay: Duration,
    /// Path statistics from the current broker to the subscriber (`NN_p`, `μ_p`, `σ_p²`).
    pub stats: PathStats,
}

impl MatchedTarget {
    /// Remaining lifetime of the message with respect to this target at `now`:
    /// `allowed_delay − hdl`, floored at zero. An unbounded target stays at
    /// `Duration::MAX` for any elapsed time — subtracting from the sentinel
    /// would silently yield a huge-but-finite bound, so callers mapping
    /// `Duration::MAX` to infinity (e.g.
    /// [`QueuedMessage::avg_remaining_lifetime_ms`]) would misread it as a
    /// real deadline the moment any time has passed.
    pub fn remaining_lifetime(&self, message: &Message, now: SimTime) -> Duration {
        if self.allowed_delay == Duration::MAX {
            return Duration::MAX;
        }
        self.allowed_delay.saturating_sub(message.elapsed(now))
    }

    /// Returns true when the target's deadline has already passed at `now`.
    pub fn is_expired(&self, message: &Message, now: SimTime) -> bool {
        self.allowed_delay != Duration::MAX && message.elapsed(now) > self.allowed_delay
    }
}

/// A message waiting in an output queue.
#[derive(Debug, Clone)]
pub struct QueuedMessage {
    /// The message itself (shared between queues).
    pub message: Arc<Message>,
    /// The subscriptions this copy still serves (all reachable via the queue's neighbour).
    pub targets: Vec<MatchedTarget>,
    /// When the message entered this queue.
    pub enqueue_time: SimTime,
}

impl QueuedMessage {
    /// Average remaining lifetime over all targets (the paper's RL tie-break
    /// for messages with several subscribers, §6.1), in milliseconds.
    pub fn avg_remaining_lifetime_ms(&self, now: SimTime) -> f64 {
        if self.targets.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .targets
            .iter()
            .map(|t| {
                let rl = t.remaining_lifetime(&self.message, now);
                if rl == Duration::MAX {
                    f64::INFINITY
                } else {
                    rl.as_millis_f64()
                }
            })
            .sum();
        total / self.targets.len() as f64
    }

    /// Returns true when every target deadline has passed.
    pub fn fully_expired(&self, now: SimTime) -> bool {
        !self.targets.is_empty()
            && self
                .targets
                .iter()
                .all(|t| t.is_expired(&self.message, now))
    }
}

/// Why a queued message was dropped before transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DropReason {
    /// Every target deadline had already passed.
    Expired,
    /// Every target's success probability was below ε (eq. 11).
    Unlikely,
}

/// A record of one dropped message.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DropRecord {
    /// The dropped message.
    pub message: MessageId,
    /// Why it was dropped.
    pub reason: DropReason,
    /// How many targets the copy was still carrying.
    pub targets: u32,
}

/// An output queue towards one downstream neighbour.
#[derive(Debug, Clone)]
pub struct OutputQueue {
    /// The neighbour this queue feeds.
    pub neighbor: BrokerId,
    /// The outgoing link towards that neighbour.
    pub link: LinkId,
    /// Mean per-KB rate of that link (ms/KB), used for the `FT` estimate of EB'.
    pub link_mean_rate_ms_per_kb: f64,
    items: Vec<QueuedMessage>,
    /// Scratch buffer reused across selections so the batch-scoring hot path
    /// does not allocate per decision.
    scores: Vec<f64>,
}

impl OutputQueue {
    /// Creates an empty queue.
    pub fn new(neighbor: BrokerId, link: LinkId, link_mean_rate_ms_per_kb: f64) -> Self {
        OutputQueue {
            neighbor,
            link,
            link_mean_rate_ms_per_kb,
            items: Vec::new(),
            scores: Vec::new(),
        }
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns true when the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total queued bytes (KB), a congestion indicator.
    pub fn queued_kb(&self) -> f64 {
        self.items.iter().map(|m| m.message.size_kb).sum()
    }

    /// The queued messages (FIFO order of arrival).
    pub fn items(&self) -> &[QueuedMessage] {
        &self.items
    }

    /// Enqueues a message copy.
    pub fn push(&mut self, item: QueuedMessage) {
        self.items.push(item);
    }

    /// The `FT` estimate of §5.2 for this queue: average message size times
    /// the mean per-KB rate of the link.
    pub fn first_send_estimate_ms(&self, config: &SchedulerConfig) -> f64 {
        config.avg_message_size_kb * self.link_mean_rate_ms_per_kb
    }

    /// Removes expired and (depending on the policy) unlikely messages,
    /// returning a record per removal (§5.4).
    pub fn purge(&mut self, now: SimTime, config: &SchedulerConfig) -> Vec<DropRecord> {
        let mut dropped = Vec::new();
        let pd = config.processing_delay;
        self.items.retain(|item| {
            let keep = match config.invalid_detection {
                InvalidDetection::Off => true,
                InvalidDetection::ExpiredOnly => !item.fully_expired(now),
                InvalidDetection::Epsilon(eps) => {
                    if item.fully_expired(now) {
                        false
                    } else {
                        metrics::max_success_probability(&item.message, &item.targets, now, pd)
                            >= eps
                    }
                }
            };
            if !keep {
                let reason = if item.fully_expired(now) {
                    DropReason::Expired
                } else {
                    DropReason::Unlikely
                };
                dropped.push(DropRecord {
                    message: item.message.id,
                    reason,
                    targets: item.targets.len() as u32,
                });
            }
            keep
        });
        dropped
    }

    /// Selects and removes the next message to transmit according to the
    /// configured strategy. Metrics are recomputed at call time because they
    /// are time-dependent. Call [`purge`](Self::purge) first to apply the
    /// invalid-message policy.
    ///
    /// Selection goes through the strategy's batch
    /// [`score_all`](crate::strategy::SchedulingStrategy::score_all) hook so
    /// implementations can amortise per-queue work; the scratch score buffer
    /// is reused across calls.
    pub fn pop_next(&mut self, now: SimTime, config: &SchedulerConfig) -> Option<QueuedMessage> {
        if self.items.is_empty() {
            return None;
        }
        let ctx = ScheduleContext::new(now, config, self.first_send_estimate_ms(config));
        let mut scores = std::mem::take(&mut self.scores);
        scores.clear();
        config.strategy.score_all(&ctx, &self.items, &mut scores);
        debug_assert_eq!(
            scores.len(),
            self.items.len(),
            "score_all must yield one score per item"
        );
        let mut best_idx = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (i, &score) in scores.iter().enumerate().take(self.items.len()) {
            // Strictly greater keeps FIFO order among ties (stable choice).
            if score > best_score {
                best_score = score;
                best_idx = i;
            }
        }
        self.scores = scores;
        Some(self.items.remove(best_idx))
    }

    /// Removes one subscription from every queued copy's target set (used
    /// when a subscriber leaves mid-run). Copies left with no target are
    /// dropped entirely; the number of such orphaned copies is returned.
    pub fn remove_subscription(&mut self, id: SubscriptionId) -> u64 {
        let mut orphaned = 0;
        self.items.retain_mut(|item| {
            item.targets.retain(|t| t.subscription != id);
            if item.targets.is_empty() {
                orphaned += 1;
                false
            } else {
                true
            }
        });
        orphaned
    }

    /// Drains every queued message (used when tearing a simulation down).
    pub fn drain(&mut self) -> Vec<QueuedMessage> {
        std::mem::take(&mut self.items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StrategyKind;
    use bdps_stats::normal::Normal;
    use bdps_types::id::PublisherId;
    use bdps_types::qos::DelayBound;

    fn msg(id: u64, publish_secs: u64, bound_secs: Option<u64>) -> Arc<Message> {
        let mut b = Message::builder(MessageId::new(id), PublisherId::new(0))
            .publish_time(SimTime::from_secs(publish_secs))
            .size_kb(50.0);
        if let Some(s) = bound_secs {
            b = b.publisher_bound(DelayBound::from_secs(s));
        }
        Arc::new(b.build())
    }

    fn target(allowed_secs: u64, price: i64, mean_rate: f64, hops: u32) -> MatchedTarget {
        let mut stats = PathStats::local();
        for _ in 0..hops {
            stats = stats.extend(Normal::new(mean_rate, 20.0));
        }
        MatchedTarget {
            subscription: SubscriptionId::new(0),
            subscriber: SubscriberId::new(0),
            price: Price::from_units(price),
            allowed_delay: Duration::from_secs(allowed_secs),
            stats,
        }
    }

    fn queued(m: Arc<Message>, targets: Vec<MatchedTarget>, enqueue_secs: u64) -> QueuedMessage {
        QueuedMessage {
            message: m,
            targets,
            enqueue_time: SimTime::from_secs(enqueue_secs),
        }
    }

    fn config(strategy: StrategyKind) -> SchedulerConfig {
        SchedulerConfig::paper(strategy)
    }

    #[test]
    fn matched_target_lifetime_and_expiry() {
        let m = msg(1, 100, None);
        let t = target(10, 1, 60.0, 1);
        let now = SimTime::from_secs(104);
        assert_eq!(t.remaining_lifetime(&m, now), Duration::from_secs(6));
        assert!(!t.is_expired(&m, now));
        assert!(t.is_expired(&m, SimTime::from_secs(111)));
        // Unbounded targets never expire.
        let unbounded = MatchedTarget {
            allowed_delay: Duration::MAX,
            ..target(10, 1, 60.0, 1)
        };
        assert!(!unbounded.is_expired(&m, SimTime::from_secs(10_000)));
    }

    #[test]
    fn avg_remaining_lifetime_averages_over_targets() {
        let m = msg(1, 0, None);
        let q = queued(m, vec![target(10, 1, 60.0, 1), target(30, 1, 60.0, 1)], 0);
        let avg = q.avg_remaining_lifetime_ms(SimTime::from_secs(5));
        assert!((avg - 15_000.0).abs() < 1e-9); // (5s + 25s) / 2
        let empty = queued(msg(2, 0, None), vec![], 0);
        assert_eq!(empty.avg_remaining_lifetime_ms(SimTime::ZERO), 0.0);
    }

    #[test]
    fn purge_removes_expired_messages() {
        let mut q = OutputQueue::new(BrokerId::new(1), LinkId::new(0), 75.0);
        q.push(queued(msg(1, 0, None), vec![target(10, 1, 60.0, 1)], 0));
        q.push(queued(msg(2, 0, None), vec![target(120, 1, 60.0, 1)], 0));
        let dropped = q.purge(SimTime::from_secs(20), &config(StrategyKind::Fifo));
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].message, MessageId::new(1));
        assert_eq!(dropped[0].reason, DropReason::Expired);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn purge_off_keeps_everything() {
        let cfg = config(StrategyKind::Fifo).with_invalid_detection(InvalidDetection::Off);
        let mut q = OutputQueue::new(BrokerId::new(1), LinkId::new(0), 75.0);
        q.push(queued(msg(1, 0, None), vec![target(10, 1, 60.0, 1)], 0));
        assert!(q.purge(SimTime::from_secs(500), &cfg).is_empty());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn purge_epsilon_drops_unlikely_but_not_expired_messages() {
        // A 50 KB message over a 4-hop path at 90 ms/KB needs ~18 s; with a
        // 10 s budget and 8 s already elapsed it is hopeless but not expired.
        let cfg = config(StrategyKind::MaxEb);
        let mut q = OutputQueue::new(BrokerId::new(1), LinkId::new(0), 90.0);
        q.push(queued(msg(1, 0, None), vec![target(10, 1, 90.0, 4)], 0));
        let now = SimTime::from_secs(8);
        let dropped = q.purge(now, &cfg);
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].reason, DropReason::Unlikely);
        // The same situation with detection limited to expiry keeps the message.
        let mut q2 = OutputQueue::new(BrokerId::new(1), LinkId::new(0), 90.0);
        q2.push(queued(msg(1, 0, None), vec![target(10, 1, 90.0, 4)], 0));
        let cfg2 = cfg.with_invalid_detection(InvalidDetection::ExpiredOnly);
        assert!(q2.purge(now, &cfg2).is_empty());
    }

    #[test]
    fn fifo_pops_in_arrival_order() {
        let cfg = config(StrategyKind::Fifo);
        let mut q = OutputQueue::new(BrokerId::new(1), LinkId::new(0), 75.0);
        q.push(queued(msg(1, 0, None), vec![target(60, 1, 60.0, 1)], 0));
        q.push(queued(msg(2, 1, None), vec![target(10, 3, 60.0, 1)], 1));
        let first = q.pop_next(SimTime::from_secs(2), &cfg).unwrap();
        assert_eq!(first.message.id, MessageId::new(1));
        let second = q.pop_next(SimTime::from_secs(2), &cfg).unwrap();
        assert_eq!(second.message.id, MessageId::new(2));
        assert!(q.pop_next(SimTime::from_secs(2), &cfg).is_none());
    }

    #[test]
    fn remaining_lifetime_pops_most_urgent_first() {
        let cfg = config(StrategyKind::RemainingLifetime);
        let mut q = OutputQueue::new(BrokerId::new(1), LinkId::new(0), 75.0);
        q.push(queued(msg(1, 0, None), vec![target(60, 1, 60.0, 1)], 0));
        q.push(queued(msg(2, 0, None), vec![target(10, 1, 60.0, 1)], 0));
        let first = q.pop_next(SimTime::from_secs(1), &cfg).unwrap();
        assert_eq!(first.message.id, MessageId::new(2));
    }

    #[test]
    fn max_eb_prefers_more_valuable_and_more_likely_messages() {
        let cfg = config(StrategyKind::MaxEb);
        let mut q = OutputQueue::new(BrokerId::new(1), LinkId::new(0), 75.0);
        // Message 1: one cheap target; message 2: three expensive targets.
        q.push(queued(msg(1, 0, None), vec![target(30, 1, 60.0, 1)], 0));
        q.push(queued(
            msg(2, 0, None),
            vec![
                target(30, 3, 60.0, 1),
                target(30, 3, 60.0, 1),
                target(30, 2, 60.0, 1),
            ],
            0,
        ));
        let first = q.pop_next(SimTime::from_secs(1), &cfg).unwrap();
        assert_eq!(first.message.id, MessageId::new(2));
    }

    #[test]
    fn remove_subscription_strips_targets_and_drops_orphans() {
        let mut q = OutputQueue::new(BrokerId::new(1), LinkId::new(0), 75.0);
        let t_keep = MatchedTarget {
            subscription: SubscriptionId::new(7),
            ..target(30, 1, 60.0, 1)
        };
        // Copy 1 only serves subscription 0; copy 2 serves 0 and 7.
        q.push(queued(msg(1, 0, None), vec![target(30, 1, 60.0, 1)], 0));
        q.push(queued(
            msg(2, 0, None),
            vec![target(30, 1, 60.0, 1), t_keep],
            0,
        ));
        let orphaned = q.remove_subscription(SubscriptionId::new(0));
        assert_eq!(orphaned, 1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.items()[0].message.id, MessageId::new(2));
        assert_eq!(q.items()[0].targets.len(), 1);
        assert_eq!(q.items()[0].targets[0].subscription, SubscriptionId::new(7));
        // Removing an id nobody serves changes nothing.
        assert_eq!(q.remove_subscription(SubscriptionId::new(99)), 0);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn queue_bookkeeping() {
        let mut q = OutputQueue::new(BrokerId::new(3), LinkId::new(9), 80.0);
        assert!(q.is_empty());
        q.push(queued(msg(1, 0, None), vec![target(30, 1, 60.0, 1)], 0));
        q.push(queued(msg(2, 0, None), vec![target(30, 1, 60.0, 1)], 0));
        assert_eq!(q.len(), 2);
        assert_eq!(q.queued_kb(), 100.0);
        assert_eq!(q.items().len(), 2);
        let cfg = config(StrategyKind::MaxEb);
        assert_eq!(q.first_send_estimate_ms(&cfg), 50.0 * 80.0);
        let drained = q.drain();
        assert_eq!(drained.len(), 2);
        assert!(q.is_empty());
    }
}
