//! Scheduler configuration.
//!
//! The scheduling strategy itself is pluggable: [`SchedulerConfig::strategy`]
//! holds a [`StrategyHandle`] (a shared `dyn SchedulingStrategy`), so any
//! implementation of the trait — built-in or user-defined — can be threaded
//! through the broker state machine. [`StrategyKind`] survives as a thin
//! compatibility shim enumerating the five paper strategies and resolving
//! each to its boxed implementation.

use crate::strategy::{Fifo, MaxEb, MaxEbpc, MaxPc, RemainingLifetime, StrategyHandle};
use bdps_types::error::{BdpsError, Result};
use bdps_types::time::Duration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The five scheduling strategies evaluated by the paper.
///
/// This enum is a compatibility shim: the scheduler itself works against the
/// [`SchedulingStrategy`](crate::strategy::SchedulingStrategy) trait, and a
/// kind simply [`resolve`](StrategyKind::resolve)s to the corresponding boxed
/// implementation. New strategies do not extend this enum — they implement
/// the trait and register with the
/// [`StrategyRegistry`](crate::strategy::StrategyRegistry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StrategyKind {
    /// First-in, first-out (baseline).
    Fifo,
    /// Minimum remaining lifetime first (baseline; "RL" in the paper). For a
    /// message matching several subscriptions the average remaining lifetime
    /// is used, as in §6.1.
    RemainingLifetime,
    /// Maximum Expected Benefit first (§5.1).
    MaxEb,
    /// Maximum Postponing Cost first (§5.2).
    MaxPc,
    /// Maximum `r·EB + (1−r)·PC` first (§5.3); `r` lives in [`SchedulerConfig`].
    MaxEbpc,
}

impl StrategyKind {
    /// All strategies, in the order the paper's figures list them.
    pub const ALL: [StrategyKind; 5] = [
        StrategyKind::MaxEb,
        StrategyKind::MaxPc,
        StrategyKind::MaxEbpc,
        StrategyKind::Fifo,
        StrategyKind::RemainingLifetime,
    ];

    /// Short label used in experiment tables ("EB", "PC", "EBPC", "FIFO", "RL").
    pub fn label(self) -> &'static str {
        match self {
            StrategyKind::Fifo => "FIFO",
            StrategyKind::RemainingLifetime => "RL",
            StrategyKind::MaxEb => "EB",
            StrategyKind::MaxPc => "PC",
            StrategyKind::MaxEbpc => "EBPC",
        }
    }

    /// Whether the strategy needs the probabilistic link model (EB/PC/EBPC do,
    /// FIFO and RL do not).
    pub fn uses_link_model(self) -> bool {
        matches!(
            self,
            StrategyKind::MaxEb | StrategyKind::MaxPc | StrategyKind::MaxEbpc
        )
    }

    /// Resolves the kind to a handle on its boxed strategy implementation.
    pub fn resolve(self) -> StrategyHandle {
        match self {
            StrategyKind::Fifo => StrategyHandle::new(Fifo),
            StrategyKind::RemainingLifetime => StrategyHandle::new(RemainingLifetime),
            StrategyKind::MaxEb => StrategyHandle::new(MaxEb),
            StrategyKind::MaxPc => StrategyHandle::new(MaxPc),
            StrategyKind::MaxEbpc => StrategyHandle::new(MaxEbpc),
        }
    }
}

impl From<StrategyKind> for StrategyHandle {
    fn from(kind: StrategyKind) -> Self {
        kind.resolve()
    }
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How a broker decides to delete queued messages early (§5.4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InvalidDetection {
    /// Never delete anything before transmission (lower bound baseline).
    Off,
    /// Delete only messages whose every target deadline has already expired.
    ExpiredOnly,
    /// Delete messages that are expired *or* whose success probability is
    /// below ε for every matching subscription (eq. 11). The paper uses
    /// ε = 0.05 %.
    Epsilon(f64),
}

impl InvalidDetection {
    /// The paper's setting: ε = 0.05 % = 0.0005.
    pub const PAPER: InvalidDetection = InvalidDetection::Epsilon(5e-4);
}

/// Configuration shared by every broker of a simulation run.
///
/// `strategy` is a shared handle on a `dyn SchedulingStrategy`, so cloning a
/// configuration is cheap and every broker of a run scores against the same
/// strategy instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// The scheduling strategy (built-in kind or user-defined implementation).
    pub strategy: StrategyHandle,
    /// The EB weight `r` of the EBPC metric (eq. 10), in [0, 1]. Ignored by
    /// the other strategies.
    pub ebpc_weight: f64,
    /// The invalid-message detection policy.
    pub invalid_detection: InvalidDetection,
    /// The per-broker, per-message processing delay `PD` (§3.2; 2 ms in the
    /// paper's evaluation).
    pub processing_delay: Duration,
    /// Average message size in KB, used to estimate `FT` — the time to send
    /// the (not yet chosen) first message when computing `EB'` (§5.2).
    pub avg_message_size_kb: f64,
}

impl SchedulerConfig {
    /// The paper's evaluation settings with the given strategy (a
    /// [`StrategyKind`] or anything convertible into a [`StrategyHandle`]).
    pub fn paper(strategy: impl Into<StrategyHandle>) -> Self {
        SchedulerConfig {
            strategy: strategy.into(),
            ebpc_weight: 0.5,
            invalid_detection: InvalidDetection::PAPER,
            processing_delay: Duration::from_millis(2),
            avg_message_size_kb: 50.0,
        }
    }

    /// Replaces the scheduling strategy.
    pub fn with_strategy(mut self, strategy: impl Into<StrategyHandle>) -> Self {
        self.strategy = strategy.into();
        self
    }

    /// Sets the EBPC weight `r`.
    pub fn with_ebpc_weight(mut self, r: f64) -> Self {
        self.ebpc_weight = r;
        self
    }

    /// Sets the invalid-detection policy.
    pub fn with_invalid_detection(mut self, policy: InvalidDetection) -> Self {
        self.invalid_detection = policy;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.ebpc_weight) || !self.ebpc_weight.is_finite() {
            return Err(BdpsError::InvalidConfig(format!(
                "EBPC weight r must be in [0, 1], got {}",
                self.ebpc_weight
            )));
        }
        if let InvalidDetection::Epsilon(eps) = self.invalid_detection {
            if !(0.0..=1.0).contains(&eps) || !eps.is_finite() {
                return Err(BdpsError::InvalidConfig(format!(
                    "epsilon must be in [0, 1], got {eps}"
                )));
            }
        }
        if self.avg_message_size_kb <= 0.0 || !self.avg_message_size_kb.is_finite() {
            return Err(BdpsError::InvalidConfig(
                "average message size must be positive".into(),
            ));
        }
        Ok(())
    }
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig::paper(StrategyKind::MaxEb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = SchedulerConfig::paper(StrategyKind::MaxEb);
        assert_eq!(c.strategy, StrategyKind::MaxEb);
        assert_eq!(c.processing_delay, Duration::from_millis(2));
        assert_eq!(c.avg_message_size_kb, 50.0);
        assert_eq!(c.invalid_detection, InvalidDetection::Epsilon(5e-4));
        assert!(c.validate().is_ok());
        assert_eq!(SchedulerConfig::default().strategy, StrategyKind::MaxEb);
    }

    #[test]
    fn labels_and_flags() {
        assert_eq!(StrategyKind::MaxEb.label(), "EB");
        assert_eq!(StrategyKind::Fifo.label(), "FIFO");
        assert_eq!(StrategyKind::RemainingLifetime.to_string(), "RL");
        assert!(StrategyKind::MaxEbpc.uses_link_model());
        assert!(!StrategyKind::Fifo.uses_link_model());
        assert_eq!(StrategyKind::ALL.len(), 5);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut c = SchedulerConfig::paper(StrategyKind::MaxEbpc).with_ebpc_weight(1.5);
        assert!(c.validate().is_err());
        c.ebpc_weight = 0.3;
        assert!(c.validate().is_ok());
        c = c.with_invalid_detection(InvalidDetection::Epsilon(2.0));
        assert!(c.validate().is_err());
        c = c.with_invalid_detection(InvalidDetection::Off);
        assert!(c.validate().is_ok());
        c.avg_message_size_kb = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn builder_helpers() {
        let c = SchedulerConfig::paper(StrategyKind::MaxEbpc)
            .with_ebpc_weight(0.8)
            .with_invalid_detection(InvalidDetection::ExpiredOnly);
        assert_eq!(c.ebpc_weight, 0.8);
        assert_eq!(c.invalid_detection, InvalidDetection::ExpiredOnly);
    }
}
