//! The scheduling strategies (§5, §6.1).
//!
//! A strategy is a priority function over queued messages; the output queue
//! removes the highest-priority item whenever its link becomes free. All
//! priorities are *recomputed at selection time* because every metric of the
//! paper depends on the current time.

use crate::config::{SchedulerConfig, StrategyKind};
use crate::metrics;
use crate::queue::QueuedMessage;
use bdps_types::time::SimTime;

/// Everything a strategy needs to score one queued message.
#[derive(Debug, Clone, Copy)]
pub struct ScheduleContext {
    /// The current simulated time.
    pub now: SimTime,
    /// The broker's scheduler configuration.
    pub config: SchedulerConfig,
    /// The `FT` estimate for the queue being scheduled (average message size
    /// times the link's mean per-KB rate), used by PC and EBPC.
    pub first_send_estimate_ms: f64,
}

impl ScheduleContext {
    /// The priority of a queued message under the configured strategy —
    /// larger is "send sooner".
    pub fn priority(&self, item: &QueuedMessage) -> f64 {
        let pd = self.config.processing_delay;
        match self.config.strategy {
            StrategyKind::Fifo => {
                // Earlier enqueue time wins; negate so larger = earlier.
                -(item.enqueue_time.as_micros() as f64)
            }
            StrategyKind::RemainingLifetime => {
                // Minimum (average) remaining lifetime first.
                -item.avg_remaining_lifetime_ms(self.now)
            }
            StrategyKind::MaxEb => {
                metrics::expected_benefit(&item.message, &item.targets, self.now, pd)
            }
            StrategyKind::MaxPc => metrics::postponing_cost(
                &item.message,
                &item.targets,
                self.now,
                pd,
                self.first_send_estimate_ms,
            ),
            StrategyKind::MaxEbpc => metrics::ebpc(
                &item.message,
                &item.targets,
                self.now,
                pd,
                self.first_send_estimate_ms,
                self.config.ebpc_weight,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::MatchedTarget;
    use bdps_overlay::pathstats::PathStats;
    use bdps_stats::normal::Normal;
    use bdps_types::id::{MessageId, PublisherId, SubscriberId, SubscriptionId};
    use bdps_types::message::Message;
    use bdps_types::money::Price;
    use bdps_types::time::Duration;
    use std::sync::Arc;

    fn item(id: u64, enqueue_secs: u64, allowed_secs: u64, price: i64, hops: u32) -> QueuedMessage {
        let mut stats = PathStats::local();
        for _ in 0..hops {
            stats = stats.extend(Normal::new(60.0, 20.0));
        }
        QueuedMessage {
            message: Arc::new(
                Message::builder(MessageId::new(id), PublisherId::new(0))
                    .publish_time(SimTime::ZERO)
                    .size_kb(50.0)
                    .build(),
            ),
            targets: vec![MatchedTarget {
                subscription: SubscriptionId::new(0),
                subscriber: SubscriberId::new(0),
                price: Price::from_units(price),
                allowed_delay: Duration::from_secs(allowed_secs),
                stats,
            }],
            enqueue_time: SimTime::from_secs(enqueue_secs),
        }
    }

    fn ctx(strategy: StrategyKind) -> ScheduleContext {
        ScheduleContext {
            now: SimTime::from_secs(2),
            config: SchedulerConfig::paper(strategy),
            first_send_estimate_ms: 50.0 * 75.0,
        }
    }

    #[test]
    fn fifo_prefers_older_items() {
        let c = ctx(StrategyKind::Fifo);
        assert!(c.priority(&item(1, 1, 30, 1, 1)) > c.priority(&item(2, 5, 10, 3, 1)));
    }

    #[test]
    fn rl_prefers_shorter_lifetimes() {
        let c = ctx(StrategyKind::RemainingLifetime);
        assert!(c.priority(&item(1, 0, 10, 1, 1)) > c.priority(&item(2, 0, 60, 1, 1)));
    }

    #[test]
    fn eb_prefers_higher_prices_and_better_odds() {
        let c = ctx(StrategyKind::MaxEb);
        // Same odds, higher price wins.
        assert!(c.priority(&item(1, 0, 30, 3, 1)) > c.priority(&item(2, 0, 30, 1, 1)));
        // Same price, shorter path (better odds) wins.
        assert!(c.priority(&item(3, 0, 10, 1, 1)) > c.priority(&item(4, 0, 10, 1, 3)));
    }

    #[test]
    fn pc_prefers_urgent_over_safe() {
        let c = ctx(StrategyKind::MaxPc);
        // The 8 s deadline message loses real probability if postponed; the
        // 60 s one does not.
        assert!(c.priority(&item(1, 0, 8, 1, 1)) > c.priority(&item(2, 0, 60, 1, 1)));
    }

    #[test]
    fn ebpc_extremes_match_components() {
        let urgent = item(1, 0, 8, 1, 1);
        let safe = item(2, 0, 60, 1, 1);
        let mut c = ctx(StrategyKind::MaxEbpc);
        c.config.ebpc_weight = 1.0;
        let eb_ctx = ctx(StrategyKind::MaxEb);
        assert!((c.priority(&urgent) - eb_ctx.priority(&urgent)).abs() < 1e-12);
        c.config.ebpc_weight = 0.0;
        let pc_ctx = ctx(StrategyKind::MaxPc);
        assert!((c.priority(&safe) - pc_ctx.priority(&safe)).abs() < 1e-12);
    }
}
