//! The pluggable scheduling-strategy surface (§5, §6.1).
//!
//! A strategy is a priority function over queued messages; the output queue
//! removes the highest-priority item whenever its link becomes free. All
//! priorities are *recomputed at selection time* because every metric of the
//! paper depends on the current time.
//!
//! The surface has three layers:
//!
//! * [`SchedulingStrategy`] — the trait a strategy implements: a per-item
//!   [`priority`](SchedulingStrategy::priority) plus an optional batch
//!   [`score_all`](SchedulingStrategy::score_all) hook the queue calls on the
//!   hot path so a strategy can amortise per-queue work;
//! * [`StrategyHandle`] — a cheaply clonable, type-erased handle
//!   (`Arc<dyn SchedulingStrategy>`) threaded through
//!   [`SchedulerConfig`], the output queues
//!   and the broker state machine;
//! * [`StrategyRegistry`] — name-based lookup used by command-line binaries
//!   and sweep helpers, open for user-defined registrations.
//!
//! The five paper strategies ([`Fifo`], [`RemainingLifetime`], [`MaxEb`],
//! [`MaxPc`], [`MaxEbpc`]) are provided here, plus [`WeightedComposite`], a
//! non-paper blend of expected benefit and urgency demonstrating that the
//! strategy family is open. User crates implement the trait on their own
//! types and pass them to the simulation through a handle — see
//! `examples/custom_strategy.rs` in the workspace root.
//!
//! # Aggregate copies and QoS envelopes
//!
//! Under aggregate-scoped forwarding an interior copy carries one
//! pseudo-target per destination edge broker instead of one per
//! subscription. That target is stamped from the destination group's
//! [`QosEnvelope`](bdps_overlay::sparse::QosEnvelope): its `allowed_delay`
//! is the envelope's **minimum member bound** (tightened by the publisher
//! bound) and its `price` is the envelope's **earning sum**. Strategies
//! need no aggregate-specific code — the stamped target flows through the
//! same formulas — but the semantics per strategy are deliberate:
//!
//! * **EB** scores `success(min bound) · earning sum`. Because the success
//!   probability is monotone in the allowed delay, this is a *lower bound*
//!   on the exact-mode sum `Σ success(bound_i) · price_i` over the members
//!   — an aggregate copy is never overvalued relative to exact copies.
//! * **PC / EBPC** inherit the same bounds: the postponing cost uses the
//!   min-bound success-probability drop times the earning sum, again a
//!   conservative (never-overvaluing) stand-in for the per-member sum.
//! * **RL** reads the min bound as the copy's remaining lifetime, so the
//!   group's most demanding member drives urgency; a group of only
//!   best-effort members stays at `Duration::MAX` → `-∞` priority, exactly
//!   like an exact-mode best-effort copy.
//! * **FIFO** ignores the envelope, as it ignores all QoS.
//!
//! Expiry-based shedding keys off the same stamped bound: once the min
//! bound has passed, the copy can no longer be on time for the *tightest*
//! member and the §5.4 purge may drop it — deliberately conservative, since
//! looser members of the same group lose the (already late-for-someone)
//! copy with it. Under congestion this is the mechanism that keeps
//! aggregate mode from collapsing toward FIFO; on uncongested runs nothing
//! sheds and the delivered pair set is untouched (held by
//! `tests/forwarding_equivalence.rs`).

use crate::config::SchedulerConfig;
use crate::metrics;
use crate::queue::QueuedMessage;
use bdps_types::time::{Duration, SimTime};
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Everything a strategy needs to score one queued message.
///
/// The context is a plain-data snapshot taken once per scheduling decision;
/// it deliberately does not borrow the configuration so that strategies can
/// be scored in batch without aliasing the queue.
#[derive(Debug, Clone, Copy)]
pub struct ScheduleContext {
    /// The current simulated time.
    pub now: SimTime,
    /// The per-broker, per-message processing delay `PD` (§3.2).
    pub processing_delay: Duration,
    /// The EB weight `r` of the EBPC metric (eq. 10).
    pub ebpc_weight: f64,
    /// Average message size in KB (used for the `FT` estimate).
    pub avg_message_size_kb: f64,
    /// The `FT` estimate for the queue being scheduled (average message size
    /// times the link's mean per-KB rate), used by PC and EBPC.
    pub first_send_estimate_ms: f64,
}

impl ScheduleContext {
    /// Builds a context from the scheduler configuration and the queue's
    /// first-send estimate.
    pub fn new(now: SimTime, config: &SchedulerConfig, first_send_estimate_ms: f64) -> Self {
        ScheduleContext {
            now,
            processing_delay: config.processing_delay,
            ebpc_weight: config.ebpc_weight,
            avg_message_size_kb: config.avg_message_size_kb,
            first_send_estimate_ms,
        }
    }
}

/// A scheduling strategy: a priority function over queued messages.
///
/// Implementations must be deterministic — the same `(ctx, item)` pair must
/// always produce the same score — and return finite values for valid inputs
/// (messages whose targets carry bounded deadlines), because the queue
/// compares scores with `>` and ties are broken by arrival order.
pub trait SchedulingStrategy: Send + Sync + fmt::Debug {
    /// The strategy's display name (e.g. `"EB"`), used in reports, registry
    /// lookups and equality checks between handles.
    fn name(&self) -> &str;

    /// The priority of one queued message — larger means "send sooner".
    fn priority(&self, ctx: &ScheduleContext, item: &QueuedMessage) -> f64;

    /// Scores a whole queue in one pass, appending one score per item (in
    /// order) to `scores`, which arrives empty.
    ///
    /// The default implementation calls [`priority`](Self::priority) per
    /// item; strategies with shared per-queue work (normalisation terms,
    /// cached link statistics) can override this to amortise it — the output
    /// queue always selects through this hook on the hot path.
    fn score_all(&self, ctx: &ScheduleContext, items: &[QueuedMessage], scores: &mut Vec<f64>) {
        scores.extend(items.iter().map(|item| self.priority(ctx, item)));
    }

    /// Whether the strategy consults the probabilistic link model. FIFO and
    /// RL do not, which also drives the §5.4 default that they only delete
    /// already-expired messages.
    fn uses_link_model(&self) -> bool {
        true
    }
}

/// First-in, first-out (baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl SchedulingStrategy for Fifo {
    fn name(&self) -> &str {
        "FIFO"
    }

    fn priority(&self, _ctx: &ScheduleContext, item: &QueuedMessage) -> f64 {
        // Earlier enqueue time wins; negate so larger = earlier.
        -(item.enqueue_time.as_micros() as f64)
    }

    fn uses_link_model(&self) -> bool {
        false
    }
}

/// Minimum remaining lifetime first (baseline; "RL" in the paper). For a
/// message matching several subscriptions the average remaining lifetime is
/// used, as in §6.1.
#[derive(Debug, Clone, Copy, Default)]
pub struct RemainingLifetime;

impl SchedulingStrategy for RemainingLifetime {
    fn name(&self) -> &str {
        "RL"
    }

    fn priority(&self, ctx: &ScheduleContext, item: &QueuedMessage) -> f64 {
        -item.avg_remaining_lifetime_ms(ctx.now)
    }

    fn uses_link_model(&self) -> bool {
        false
    }
}

/// Maximum Expected Benefit first (§5.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxEb;

impl SchedulingStrategy for MaxEb {
    fn name(&self) -> &str {
        "EB"
    }

    fn priority(&self, ctx: &ScheduleContext, item: &QueuedMessage) -> f64 {
        metrics::expected_benefit(&item.message, &item.targets, ctx.now, ctx.processing_delay)
    }
}

/// Maximum Postponing Cost first (§5.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxPc;

impl SchedulingStrategy for MaxPc {
    fn name(&self) -> &str {
        "PC"
    }

    fn priority(&self, ctx: &ScheduleContext, item: &QueuedMessage) -> f64 {
        metrics::postponing_cost(
            &item.message,
            &item.targets,
            ctx.now,
            ctx.processing_delay,
            ctx.first_send_estimate_ms,
        )
    }
}

/// Maximum `r·EB + (1−r)·PC` first (§5.3); `r` is read from the
/// [`ScheduleContext`] so that configuration-level weight sweeps keep
/// working.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxEbpc;

impl SchedulingStrategy for MaxEbpc {
    fn name(&self) -> &str {
        "EBPC"
    }

    fn priority(&self, ctx: &ScheduleContext, item: &QueuedMessage) -> f64 {
        metrics::ebpc(
            &item.message,
            &item.targets,
            ctx.now,
            ctx.processing_delay,
            ctx.first_send_estimate_ms,
            ctx.ebpc_weight,
        )
    }
}

/// A non-paper strategy blending Expected Benefit with deadline urgency:
/// `w·EB + (1−w)·urgency`, where `urgency = 1 / (1 + avg remaining lifetime
/// in seconds)` lies in `(0, 1]` and grows as deadlines approach.
///
/// EB alone starves messages whose success probability has decayed but that
/// could still be rescued; pure RL ignores value. The blend sends valuable
/// messages early while still bumping urgent ones up the queue. It exists
/// mainly to demonstrate that the strategy family is open — it is registered
/// under `"composite"` in [`StrategyRegistry::builtin`].
#[derive(Debug, Clone, Copy)]
pub struct WeightedComposite {
    /// Weight of the EB term, in `[0, 1]`.
    pub eb_weight: f64,
}

impl WeightedComposite {
    /// Creates the composite with the given EB weight (clamped to `[0, 1]`).
    pub fn new(eb_weight: f64) -> Self {
        WeightedComposite {
            eb_weight: eb_weight.clamp(0.0, 1.0),
        }
    }
}

impl Default for WeightedComposite {
    fn default() -> Self {
        WeightedComposite::new(0.5)
    }
}

impl SchedulingStrategy for WeightedComposite {
    fn name(&self) -> &str {
        "COMPOSITE"
    }

    fn priority(&self, ctx: &ScheduleContext, item: &QueuedMessage) -> f64 {
        let eb =
            metrics::expected_benefit(&item.message, &item.targets, ctx.now, ctx.processing_delay);
        // `avg_remaining_lifetime_ms` is +∞ for purely best-effort targets,
        // for which the urgency term cleanly vanishes.
        let urgency = 1.0 / (1.0 + item.avg_remaining_lifetime_ms(ctx.now) / 1_000.0);
        self.eb_weight * eb + (1.0 - self.eb_weight) * urgency
    }
}

/// A cheaply clonable, type-erased handle to a scheduling strategy.
///
/// This is what gets threaded through [`SchedulerConfig`], the output queues
/// and the broker state machine. Handles compare equal when their strategies
/// report the same [`name`](SchedulingStrategy::name), which also makes them
/// comparable against [`StrategyKind`](crate::config::StrategyKind) in tests
/// and compatibility code.
#[derive(Clone)]
pub struct StrategyHandle(Arc<dyn SchedulingStrategy>);

impl StrategyHandle {
    /// Wraps a concrete strategy.
    pub fn new(strategy: impl SchedulingStrategy + 'static) -> Self {
        StrategyHandle(Arc::new(strategy))
    }

    /// Wraps an already shared strategy.
    pub fn from_arc(strategy: Arc<dyn SchedulingStrategy>) -> Self {
        StrategyHandle(strategy)
    }

    /// Short label used in experiment tables ("EB", "PC", "EBPC", "FIFO",
    /// "RL", ...).
    pub fn label(&self) -> &str {
        self.0.name()
    }
}

impl Deref for StrategyHandle {
    type Target = dyn SchedulingStrategy;
    fn deref(&self) -> &Self::Target {
        &*self.0
    }
}

impl fmt::Debug for StrategyHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StrategyHandle({:?})", &*self.0)
    }
}

impl fmt::Display for StrategyHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0.name())
    }
}

impl PartialEq for StrategyHandle {
    /// Two handles are equal when they share the strategy instance, or when
    /// name *and* `Debug` representation agree — the latter catches
    /// differently-parameterised instances of the same strategy type (e.g.
    /// two [`WeightedComposite`]s with different weights), which must not
    /// compare equal just because they share a display name.
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
            || (self.0.name() == other.0.name()
                && format!("{:?}", &*self.0) == format!("{:?}", &*other.0))
    }
}

impl PartialEq<crate::config::StrategyKind> for StrategyHandle {
    fn eq(&self, kind: &crate::config::StrategyKind) -> bool {
        self.0.name() == kind.label()
    }
}

impl<S: SchedulingStrategy + 'static> From<S> for StrategyHandle {
    fn from(strategy: S) -> Self {
        StrategyHandle::new(strategy)
    }
}

type StrategyFactory = Box<dyn Fn() -> StrategyHandle + Send + Sync>;

struct RegistryEntry {
    name: String,
    aliases: Vec<String>,
    factory: StrategyFactory,
}

/// Name-based strategy lookup for command-line binaries and sweeps.
///
/// [`StrategyRegistry::builtin`] knows every strategy shipped with the crate;
/// applications [`register`](StrategyRegistry::register) their own on top.
/// Lookups are case-insensitive and also match a strategy's display label,
/// so `"eb"`, `"EB"` and `"Eb"` all resolve the same.
pub struct StrategyRegistry {
    entries: Vec<RegistryEntry>,
}

impl StrategyRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        StrategyRegistry {
            entries: Vec::new(),
        }
    }

    /// A registry containing every built-in strategy, under the canonical
    /// names `fifo`, `rl`, `eb`, `pc`, `ebpc` and `composite`.
    pub fn builtin() -> Self {
        let mut r = StrategyRegistry::new();
        r.register_with_aliases("fifo", &[], || StrategyHandle::new(Fifo));
        r.register_with_aliases("rl", &["remaining-lifetime"], || {
            StrategyHandle::new(RemainingLifetime)
        });
        r.register_with_aliases("eb", &["expected-benefit"], || StrategyHandle::new(MaxEb));
        r.register_with_aliases("pc", &["postponing-cost"], || StrategyHandle::new(MaxPc));
        r.register_with_aliases("ebpc", &[], || StrategyHandle::new(MaxEbpc));
        r.register_with_aliases("composite", &["weighted", "weighted-composite"], || {
            StrategyHandle::new(WeightedComposite::default())
        });
        r
    }

    /// Registers a strategy factory under a canonical name. A later
    /// registration under the same name shadows an earlier one.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn() -> StrategyHandle + Send + Sync + 'static,
    ) {
        self.register_with_aliases(name, &[], factory);
    }

    /// Registers a strategy factory under a canonical name plus aliases.
    pub fn register_with_aliases(
        &mut self,
        name: impl Into<String>,
        aliases: &[&str],
        factory: impl Fn() -> StrategyHandle + Send + Sync + 'static,
    ) {
        self.entries.push(RegistryEntry {
            name: name.into().to_ascii_lowercase(),
            aliases: aliases.iter().map(|a| a.to_ascii_lowercase()).collect(),
            factory: Box::new(factory),
        });
    }

    /// Resolves a name (canonical, alias or display label, case-insensitive)
    /// to a fresh strategy handle.
    pub fn resolve(&self, name: &str) -> Option<StrategyHandle> {
        let wanted = name.to_ascii_lowercase();
        // Later registrations shadow earlier ones.
        for entry in self.entries.iter().rev() {
            if entry.name == wanted || entry.aliases.contains(&wanted) {
                return Some((entry.factory)());
            }
        }
        for entry in self.entries.iter().rev() {
            if (entry.factory)().label().to_ascii_lowercase() == wanted {
                return Some((entry.factory)());
            }
        }
        None
    }

    /// The canonical names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }
}

impl Default for StrategyRegistry {
    fn default() -> Self {
        StrategyRegistry::builtin()
    }
}

impl fmt::Debug for StrategyRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StrategyRegistry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StrategyKind;
    use crate::queue::MatchedTarget;
    use bdps_overlay::pathstats::PathStats;
    use bdps_stats::normal::Normal;
    use bdps_types::id::{MessageId, PublisherId, SubscriberId, SubscriptionId};
    use bdps_types::message::Message;
    use bdps_types::money::Price;
    use bdps_types::time::Duration;

    fn item(id: u64, enqueue_secs: u64, allowed_secs: u64, price: i64, hops: u32) -> QueuedMessage {
        let mut stats = PathStats::local();
        for _ in 0..hops {
            stats = stats.extend(Normal::new(60.0, 20.0));
        }
        QueuedMessage {
            message: Arc::new(
                Message::builder(MessageId::new(id), PublisherId::new(0))
                    .publish_time(SimTime::ZERO)
                    .size_kb(50.0)
                    .build(),
            ),
            targets: vec![MatchedTarget {
                subscription: SubscriptionId::new(0),
                subscriber: SubscriberId::new(0),
                price: Price::from_units(price),
                allowed_delay: Duration::from_secs(allowed_secs),
                stats,
            }],
            enqueue_time: SimTime::from_secs(enqueue_secs),
        }
    }

    fn ctx() -> ScheduleContext {
        ScheduleContext {
            now: SimTime::from_secs(2),
            processing_delay: Duration::from_millis(2),
            ebpc_weight: 0.5,
            avg_message_size_kb: 50.0,
            first_send_estimate_ms: 50.0 * 75.0,
        }
    }

    fn p(strategy: &dyn SchedulingStrategy, item: &QueuedMessage) -> f64 {
        strategy.priority(&ctx(), item)
    }

    #[test]
    fn fifo_prefers_older_items() {
        assert!(p(&Fifo, &item(1, 1, 30, 1, 1)) > p(&Fifo, &item(2, 5, 10, 3, 1)));
    }

    #[test]
    fn rl_prefers_shorter_lifetimes() {
        let s = RemainingLifetime;
        assert!(p(&s, &item(1, 0, 10, 1, 1)) > p(&s, &item(2, 0, 60, 1, 1)));
    }

    #[test]
    fn eb_prefers_higher_prices_and_better_odds() {
        // Same odds, higher price wins.
        assert!(p(&MaxEb, &item(1, 0, 30, 3, 1)) > p(&MaxEb, &item(2, 0, 30, 1, 1)));
        // Same price, shorter path (better odds) wins.
        assert!(p(&MaxEb, &item(3, 0, 10, 1, 1)) > p(&MaxEb, &item(4, 0, 10, 1, 3)));
    }

    #[test]
    fn pc_prefers_urgent_over_safe() {
        // The 8 s deadline message loses real probability if postponed; the
        // 60 s one does not.
        assert!(p(&MaxPc, &item(1, 0, 8, 1, 1)) > p(&MaxPc, &item(2, 0, 60, 1, 1)));
    }

    #[test]
    fn ebpc_extremes_match_components() {
        let urgent = item(1, 0, 8, 1, 1);
        let safe = item(2, 0, 60, 1, 1);
        let mut c = ctx();
        c.ebpc_weight = 1.0;
        assert!((MaxEbpc.priority(&c, &urgent) - p(&MaxEb, &urgent)).abs() < 1e-12);
        c.ebpc_weight = 0.0;
        assert!((MaxEbpc.priority(&c, &safe) - p(&MaxPc, &safe)).abs() < 1e-12);
    }

    #[test]
    fn composite_blends_value_and_urgency() {
        let c = ctx();
        // Pure EB weight reproduces EB.
        let eb_only = WeightedComposite::new(1.0);
        let x = item(1, 0, 30, 3, 1);
        assert!((eb_only.priority(&c, &x) - p(&MaxEb, &x)).abs() < 1e-12);
        // Pure urgency weight prefers the tighter deadline regardless of price.
        let urgency_only = WeightedComposite::new(0.0);
        assert!(
            urgency_only.priority(&c, &item(1, 0, 8, 1, 1))
                > urgency_only.priority(&c, &item(2, 0, 60, 3, 1))
        );
        // Weights outside [0, 1] are clamped.
        assert_eq!(WeightedComposite::new(7.0).eb_weight, 1.0);
    }

    #[test]
    fn score_all_default_matches_priority() {
        let items = vec![
            item(1, 0, 10, 1, 1),
            item(2, 1, 30, 2, 2),
            item(3, 2, 60, 3, 1),
        ];
        let c = ctx();
        for strategy in [
            StrategyHandle::new(Fifo),
            StrategyHandle::new(RemainingLifetime),
            StrategyHandle::new(MaxEb),
            StrategyHandle::new(MaxPc),
            StrategyHandle::new(MaxEbpc),
            StrategyHandle::new(WeightedComposite::default()),
        ] {
            let mut scores = Vec::new();
            strategy.score_all(&c, &items, &mut scores);
            assert_eq!(scores.len(), items.len());
            for (s, i) in scores.iter().zip(items.iter()) {
                assert_eq!(*s, strategy.priority(&c, i), "{}", strategy.label());
            }
        }
    }

    /// A copy whose single target mimics one built at an `enqueue_secs`
    /// arrival with explicit bound/price — the shape of both sentinel-era
    /// aggregate targets (`Duration::MAX`, `Price::ZERO`) and
    /// envelope-stamped ones (min member bound, earning sum).
    fn stamped(id: u64, allowed: Duration, price: Price) -> QueuedMessage {
        QueuedMessage {
            message: Arc::new(
                Message::builder(MessageId::new(id), PublisherId::new(0))
                    .publish_time(SimTime::ZERO)
                    .size_kb(50.0)
                    .build(),
            ),
            targets: vec![MatchedTarget {
                subscription: SubscriptionId::new(0),
                subscriber: SubscriberId::new(0),
                price,
                allowed_delay: allowed,
                stats: PathStats::local().extend(Normal::new(60.0, 20.0)),
            }],
            enqueue_time: SimTime::ZERO,
        }
    }

    /// Regression (sentinel-era arithmetic audit): a copy stamped with the
    /// `Duration::MAX` / `Price::ZERO` sentinels must score without
    /// overflow or NaN under every strategy even after time has elapsed.
    /// Before the fix, `MatchedTarget::remaining_lifetime` subtracted the
    /// elapsed time *from the sentinel*, producing a huge-but-finite value
    /// that slipped past the `== Duration::MAX → ∞` mapping in
    /// `avg_remaining_lifetime_ms` — RL and COMPOSITE then ranked unbounded
    /// copies by a meaningless near-`u64::MAX` lifetime.
    #[test]
    fn sentinel_stamped_copy_scores_without_overflow() {
        let c = ctx(); // now = 2 s, so every target has elapsed time
        let copy = stamped(1, Duration::MAX, Price::ZERO);
        assert_eq!(
            copy.avg_remaining_lifetime_ms(c.now),
            f64::INFINITY,
            "an unbounded target's lifetime must stay infinite once time has passed"
        );
        let strategies: [StrategyHandle; 6] = [
            StrategyHandle::new(Fifo),
            StrategyHandle::new(RemainingLifetime),
            StrategyHandle::new(MaxEb),
            StrategyHandle::new(MaxPc),
            StrategyHandle::new(MaxEbpc),
            StrategyHandle::new(WeightedComposite::default()),
        ];
        for strategy in &strategies {
            let score = strategy.priority(&c, &copy);
            assert!(!score.is_nan(), "{} produced NaN", strategy.label());
            // Scoring is deterministic: same copy, same score.
            assert_eq!(score, strategy.priority(&c, &copy), "{}", strategy.label());
        }
        // RL maps the infinite lifetime to the lowest possible priority —
        // never a huge finite number competing with real deadlines.
        assert_eq!(RemainingLifetime.priority(&c, &copy), f64::NEG_INFINITY);
        // COMPOSITE's urgency term cleanly vanishes; only the EB term stays.
        let composite = WeightedComposite::new(0.5);
        let eb = MaxEb.priority(&c, &copy);
        assert_eq!(composite.priority(&c, &copy), 0.5 * eb);
        // EB of a zero-price unbounded copy is exactly zero (probability 1,
        // price 0) — not an overflowed artefact.
        assert_eq!(eb, 0.0);
        // Two sentinel copies tie on every strategy, so the queue's
        // strictly-greater selection falls back to arrival order: the
        // ordering is deterministic.
        let twin = stamped(2, Duration::MAX, Price::ZERO);
        for strategy in &strategies {
            let mut scores = Vec::new();
            strategy.score_all(&c, &[copy.clone(), twin.clone()], &mut scores);
            assert_eq!(scores[0], scores[1], "{}", strategy.label());
        }
    }

    /// Envelope-stamped aggregate copies rank by their real bounds: EB by
    /// the earning sum, RL by the min member bound, and a copy whose
    /// envelope deadline passed becomes sheddable.
    #[test]
    fn envelope_stamped_copies_rank_and_expire_by_envelope_bounds() {
        let c = ctx(); // now = 2 s
        let rich = stamped(1, Duration::from_secs(30), Price::from_units(5));
        let poor = stamped(2, Duration::from_secs(30), Price::unit());
        assert!(
            MaxEb.priority(&c, &rich) > MaxEb.priority(&c, &poor),
            "EB must prefer the larger earning sum at equal bounds"
        );
        let tight = stamped(3, Duration::from_secs(10), Price::unit());
        let loose = stamped(4, Duration::from_secs(60), Price::unit());
        assert!(
            RemainingLifetime.priority(&c, &tight) > RemainingLifetime.priority(&c, &loose),
            "RL must prefer the tighter envelope min bound"
        );
        // An envelope whose min bound already passed: expired, hence
        // purgeable under ExpiredOnly detection — the shedding the sentinel
        // era could never trigger for aggregate copies.
        let dead = stamped(5, Duration::from_secs(1), Price::from_units(5));
        assert!(dead.targets[0].is_expired(&dead.message, c.now));
        assert!(dead.fully_expired(c.now));
    }

    #[test]
    fn handles_compare_by_name() {
        let a = StrategyHandle::new(MaxEb);
        let b = StrategyKind::MaxEb.resolve();
        assert_eq!(a, b);
        assert_eq!(a, StrategyKind::MaxEb);
        assert_ne!(a, StrategyHandle::new(Fifo));
        assert_eq!(a.to_string(), "EB");
        assert!(format!("{a:?}").contains("MaxEb"));
        // Differently-parameterised instances of the same strategy type are
        // not equal; identically-parameterised ones are.
        let light = StrategyHandle::new(WeightedComposite::new(0.1));
        let heavy = StrategyHandle::new(WeightedComposite::new(0.9));
        assert_ne!(light, heavy);
        assert_eq!(light, StrategyHandle::new(WeightedComposite::new(0.1)));
        assert_eq!(light.clone(), light);
    }

    #[test]
    fn registry_resolves_builtins_and_custom_registrations() {
        let mut registry = StrategyRegistry::builtin();
        for name in ["fifo", "rl", "eb", "pc", "ebpc", "composite"] {
            let handle = registry.resolve(name).expect(name);
            assert!(registry.resolve(handle.label()).is_some(), "{name} label");
        }
        // Aliases and case-insensitivity.
        assert_eq!(
            registry.resolve("REMAINING-LIFETIME").unwrap(),
            StrategyKind::RemainingLifetime
        );
        assert_eq!(registry.resolve("Weighted").unwrap().label(), "COMPOSITE");
        assert!(registry.resolve("nope").is_none());
        // Custom registration shadows by name.
        registry.register("eb", || StrategyHandle::new(Fifo));
        assert_eq!(registry.resolve("eb").unwrap().label(), "FIFO");
        assert_eq!(registry.names().len(), 7);
    }
}
