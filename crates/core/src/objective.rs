//! System objectives: delivery rate and total earning (§4.1).
//!
//! * **Delivery rate** (PSD): `Σ ds_i / Σ ts_i` over published messages,
//!   where `ts_i` is the number of subscribers interested in message `i` and
//!   `ds_i` the number that received it before the deadline (eq. 1).
//! * **Total earning** (SSD): `Σ price(s_i) · msg(s_i)` over subscribers,
//!   where `msg(s_i)` counts valid (on-time) deliveries (eq. 2).
//!
//! The tracker computes both at once so that any scenario can report either.

use bdps_types::id::{MessageId, SubscriberId};
use bdps_types::money::{Earning, Price};
use bdps_types::time::Duration;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Per-message delivery bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct MessageStat {
    interested: u32,
    delivered_on_time: u32,
    delivered_late: u32,
}

/// Tracks the paper's objective functions over a run.
#[derive(Debug, Clone, Default)]
pub struct ObjectiveTracker {
    messages: HashMap<MessageId, MessageStat>,
    per_subscriber_valid: HashMap<SubscriberId, u64>,
    total_earning: Earning,
    delay_sum_ms: f64,
    delay_count: u64,
    /// Every (message, subscriber) pair seen so far — the audit trail behind
    /// the no-duplicate-delivery invariant, which dynamic scenarios (churn,
    /// link failures with requeues) could otherwise silently break.
    seen_pairs: HashSet<(MessageId, SubscriberId)>,
    duplicate_deliveries: u64,
    /// The first few offending pairs (capped at
    /// [`DUPLICATE_SAMPLE_CAP`]), so violation reports can name the exact
    /// message/subscriber instead of only a count.
    duplicate_pairs: Vec<(MessageId, SubscriberId)>,
}

/// How many duplicate (message, subscriber) pairs are retained verbatim for
/// violation reports; beyond this only the count grows.
const DUPLICATE_SAMPLE_CAP: usize = 8;

impl ObjectiveTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a published message together with the number of subscribers
    /// interested in it (`ts_i`), evaluated against the global subscription
    /// population at publication time.
    pub fn register_message(&mut self, id: MessageId, interested: u32) {
        self.messages.entry(id).or_default().interested = interested;
    }

    /// Adds to a message's interested count after registration. Aggregate
    /// forwarding uses this: the publish path cannot know `ts_i` without the
    /// global walk it exists to avoid, so each edge broker contributes its
    /// expansion's match count as the copies arrive. The resulting total
    /// counts only members whose copies reached their edge — a lower bound
    /// on the exact mode's `ts_i`.
    pub fn add_interested(&mut self, id: MessageId, n: u32) {
        self.messages.entry(id).or_default().interested += n;
    }

    /// Every (message, subscriber) pair delivered so far — on time or late —
    /// in sorted order. The delivery-*set* oracle: forwarding modes may
    /// differ in traffic, hops and timing, but must deliver exactly the same
    /// pair set.
    pub fn delivered_pairs(&self) -> Vec<(MessageId, SubscriberId)> {
        let mut pairs: Vec<(MessageId, SubscriberId)> = self.seen_pairs.iter().copied().collect();
        pairs.sort_unstable();
        pairs
    }

    /// Records a delivery attempt that reached the subscriber.
    pub fn record_delivery(
        &mut self,
        message: MessageId,
        subscriber: SubscriberId,
        price: Price,
        delay: Duration,
        on_time: bool,
    ) {
        if !self.seen_pairs.insert((message, subscriber)) {
            self.duplicate_deliveries += 1;
            if self.duplicate_pairs.len() < DUPLICATE_SAMPLE_CAP {
                self.duplicate_pairs.push((message, subscriber));
            }
        }
        let stat = self.messages.entry(message).or_default();
        if on_time {
            stat.delivered_on_time += 1;
            *self.per_subscriber_valid.entry(subscriber).or_insert(0) += 1;
            self.total_earning.credit(price);
            self.delay_sum_ms += delay.as_millis_f64();
            self.delay_count += 1;
        } else {
            stat.delivered_late += 1;
        }
    }

    /// Number of registered (published) messages.
    pub fn published_messages(&self) -> usize {
        self.messages.len()
    }

    /// Total interested (message, subscriber) pairs — `Σ ts_i`.
    pub fn total_interested(&self) -> u64 {
        self.messages.values().map(|m| m.interested as u64).sum()
    }

    /// Total on-time deliveries — `Σ ds_i`.
    pub fn total_on_time(&self) -> u64 {
        self.messages
            .values()
            .map(|m| m.delivered_on_time as u64)
            .sum()
    }

    /// Total deliveries that arrived after their deadline.
    pub fn total_late(&self) -> u64 {
        self.messages
            .values()
            .map(|m| m.delivered_late as u64)
            .sum()
    }

    /// The delivery rate of eq. (1), in `[0, 1]`; zero when nothing was published.
    pub fn delivery_rate(&self) -> f64 {
        let interested = self.total_interested();
        if interested == 0 {
            return 0.0;
        }
        self.total_on_time() as f64 / interested as f64
    }

    /// The total earning of eq. (2).
    pub fn total_earning(&self) -> Earning {
        self.total_earning
    }

    /// Valid deliveries per subscriber (`msg(s_i)`).
    pub fn valid_deliveries_of(&self, subscriber: SubscriberId) -> u64 {
        self.per_subscriber_valid
            .get(&subscriber)
            .copied()
            .unwrap_or(0)
    }

    /// Number of deliveries that reached a (message, subscriber) pair more
    /// than once. Single-path scoped forwarding guarantees this stays zero,
    /// including under churn and link failures; the invariant tests assert it.
    pub fn duplicate_deliveries(&self) -> u64 {
        self.duplicate_deliveries
    }

    /// The first few duplicated (message, subscriber) pairs, for
    /// self-explaining violation reports; empty when the audit is clean.
    pub fn duplicate_samples(&self) -> &[(MessageId, SubscriberId)] {
        &self.duplicate_pairs
    }

    /// Hashes the tracker's complete delivery bookkeeping (message stats,
    /// per-subscriber counts, earning, delay accumulators and the duplicate
    /// audit) in deterministic sorted order, for the model-checking
    /// explorer's state deduplication.
    pub fn state_digest(&self) -> u64 {
        use std::hash::Hasher as _;
        let mut h = std::collections::hash_map::DefaultHasher::new();
        let mut msgs: Vec<(&MessageId, &MessageStat)> = self.messages.iter().collect();
        msgs.sort_unstable_by_key(|(id, _)| **id);
        h.write_usize(msgs.len());
        for (id, stat) in msgs {
            h.write_u64(id.raw());
            h.write_u32(stat.interested);
            h.write_u32(stat.delivered_on_time);
            h.write_u32(stat.delivered_late);
        }
        let mut subs: Vec<(&SubscriberId, &u64)> = self.per_subscriber_valid.iter().collect();
        subs.sort_unstable_by_key(|(s, _)| **s);
        h.write_usize(subs.len());
        for (s, n) in subs {
            h.write_u32(s.raw());
            h.write_u64(*n);
        }
        h.write_u64(self.total_earning.as_f64().to_bits());
        h.write_u64(self.delay_sum_ms.to_bits());
        h.write_u64(self.delay_count);
        h.write_u64(self.duplicate_deliveries);
        let mut pairs: Vec<&(MessageId, SubscriberId)> = self.seen_pairs.iter().collect();
        pairs.sort_unstable();
        h.write_usize(pairs.len());
        for (m, s) in pairs {
            h.write_u64(m.raw());
            h.write_u32(s.raw());
        }
        h.finish()
    }

    /// Mean end-to-end delay of on-time deliveries, in milliseconds.
    pub fn mean_valid_delay_ms(&self) -> f64 {
        if self.delay_count == 0 {
            0.0
        } else {
            self.delay_sum_ms / self.delay_count as f64
        }
    }

    /// Merges another tracker (e.g. from a parallel shard) into this one.
    pub fn merge(&mut self, other: &ObjectiveTracker) {
        for (id, stat) in &other.messages {
            let mine = self.messages.entry(*id).or_default();
            mine.interested = mine.interested.max(stat.interested);
            mine.delivered_on_time += stat.delivered_on_time;
            mine.delivered_late += stat.delivered_late;
        }
        for (s, n) in &other.per_subscriber_valid {
            *self.per_subscriber_valid.entry(*s).or_insert(0) += n;
        }
        self.total_earning += other.total_earning;
        self.delay_sum_ms += other.delay_sum_ms;
        self.delay_count += other.delay_count;
        self.duplicate_deliveries += other.duplicate_deliveries;
        for pair in &other.duplicate_pairs {
            if self.duplicate_pairs.len() < DUPLICATE_SAMPLE_CAP {
                self.duplicate_pairs.push(*pair);
            }
        }
        for pair in &other.seen_pairs {
            if !self.seen_pairs.insert(*pair) {
                self.duplicate_deliveries += 1;
                if self.duplicate_pairs.len() < DUPLICATE_SAMPLE_CAP {
                    self.duplicate_pairs.push(*pair);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_rate_follows_equation_1() {
        let mut t = ObjectiveTracker::new();
        t.register_message(MessageId::new(1), 4);
        t.register_message(MessageId::new(2), 2);
        // Message 1 reaches 3 of 4 in time, message 2 reaches 0 of 2.
        for i in 0..3 {
            t.record_delivery(
                MessageId::new(1),
                SubscriberId::new(i),
                Price::unit(),
                Duration::from_secs(5),
                true,
            );
        }
        t.record_delivery(
            MessageId::new(2),
            SubscriberId::new(9),
            Price::unit(),
            Duration::from_secs(40),
            false,
        );
        assert_eq!(t.total_interested(), 6);
        assert_eq!(t.total_on_time(), 3);
        assert_eq!(t.total_late(), 1);
        assert!((t.delivery_rate() - 0.5).abs() < 1e-12);
        assert_eq!(t.published_messages(), 2);
    }

    #[test]
    fn earning_follows_equation_2() {
        let mut t = ObjectiveTracker::new();
        t.register_message(MessageId::new(1), 3);
        // Subscriber 0 pays 3 per valid message and receives two valid messages.
        t.record_delivery(
            MessageId::new(1),
            SubscriberId::new(0),
            Price::from_units(3),
            Duration::from_secs(2),
            true,
        );
        t.register_message(MessageId::new(2), 3);
        t.record_delivery(
            MessageId::new(2),
            SubscriberId::new(0),
            Price::from_units(3),
            Duration::from_secs(2),
            true,
        );
        // Subscriber 1 pays 1 and receives one valid and one late message.
        t.record_delivery(
            MessageId::new(1),
            SubscriberId::new(1),
            Price::from_units(1),
            Duration::from_secs(2),
            true,
        );
        t.record_delivery(
            MessageId::new(2),
            SubscriberId::new(1),
            Price::from_units(1),
            Duration::from_secs(90),
            false,
        );
        assert_eq!(t.total_earning().as_f64(), 7.0);
        assert_eq!(t.valid_deliveries_of(SubscriberId::new(0)), 2);
        assert_eq!(t.valid_deliveries_of(SubscriberId::new(1)), 1);
        assert_eq!(t.valid_deliveries_of(SubscriberId::new(7)), 0);
    }

    #[test]
    fn empty_tracker_defaults() {
        let t = ObjectiveTracker::new();
        assert_eq!(t.delivery_rate(), 0.0);
        assert_eq!(t.total_earning(), Earning::ZERO);
        assert_eq!(t.mean_valid_delay_ms(), 0.0);
        assert_eq!(t.duplicate_deliveries(), 0);
    }

    #[test]
    fn duplicate_deliveries_are_audited() {
        let mut t = ObjectiveTracker::new();
        t.register_message(MessageId::new(1), 2);
        let deliver = |t: &mut ObjectiveTracker, sub: u32| {
            t.record_delivery(
                MessageId::new(1),
                SubscriberId::new(sub),
                Price::unit(),
                Duration::from_secs(1),
                true,
            );
        };
        deliver(&mut t, 0);
        deliver(&mut t, 1);
        assert_eq!(t.duplicate_deliveries(), 0);
        deliver(&mut t, 0); // the same pair again
        assert_eq!(t.duplicate_deliveries(), 1);
        // Merging two shards that saw the same pair also counts it.
        let mut a = ObjectiveTracker::new();
        a.register_message(MessageId::new(2), 1);
        deliver(&mut a, 5);
        let mut b = ObjectiveTracker::new();
        deliver(&mut b, 5);
        a.merge(&b);
        assert_eq!(a.duplicate_deliveries(), 1);
    }

    #[test]
    fn mean_delay_counts_only_valid_deliveries() {
        let mut t = ObjectiveTracker::new();
        t.register_message(MessageId::new(1), 2);
        t.record_delivery(
            MessageId::new(1),
            SubscriberId::new(0),
            Price::unit(),
            Duration::from_millis(1_000),
            true,
        );
        t.record_delivery(
            MessageId::new(1),
            SubscriberId::new(1),
            Price::unit(),
            Duration::from_millis(9_000),
            false,
        );
        assert!((t.mean_valid_delay_ms() - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn merge_combines_shards() {
        let mut a = ObjectiveTracker::new();
        a.register_message(MessageId::new(1), 4);
        a.record_delivery(
            MessageId::new(1),
            SubscriberId::new(0),
            Price::from_units(2),
            Duration::from_secs(1),
            true,
        );
        let mut b = ObjectiveTracker::new();
        b.register_message(MessageId::new(1), 4);
        b.record_delivery(
            MessageId::new(1),
            SubscriberId::new(1),
            Price::from_units(2),
            Duration::from_secs(3),
            true,
        );
        a.merge(&b);
        assert_eq!(a.total_on_time(), 2);
        assert_eq!(a.total_interested(), 4);
        assert_eq!(a.total_earning().as_f64(), 4.0);
        assert!((a.delivery_rate() - 0.5).abs() < 1e-12);
        assert!((a.mean_valid_delay_ms() - 2_000.0).abs() < 1e-9);
    }
}
