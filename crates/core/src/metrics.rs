//! The paper's scheduling metrics (§5).
//!
//! All metrics are computed for a message `m` waiting in an output queue of a
//! broker `N`, against the set of matching subscriptions reachable through
//! that queue:
//!
//! * `success(s_i, m) = P(hdl(m) + fdl(s_i, m) ≤ adl(s_i))` — eq. (5), where
//!   `hdl` is the delay already accumulated, `fdl = NN_p·PD + size·TR_p` the
//!   (scheduling-delay-free) future delay (eq. 4) and `adl` the allowed delay;
//! * `EB_m = Σ success(s_i, m) · price(s_i)` — eq. (3);
//! * `EB'_m` — the same with `fdl' = fdl + FT` (eq. 6–8), i.e. assuming the
//!   current broker sends the message *second*;
//! * `PC_m = EB_m − EB'_m` — eq. (9);
//! * `EBPC_m = r·EB_m + (1−r)·PC_m` — eq. (10).

use crate::queue::MatchedTarget;
use bdps_types::message::Message;
use bdps_types::time::{Duration, SimTime};

/// The probability that `message` reaches the target's subscriber within its
/// allowed delay, assuming every remaining broker sends it first (eq. 5).
pub fn success_probability(
    message: &Message,
    target: &MatchedTarget,
    now: SimTime,
    processing_delay: Duration,
) -> f64 {
    success_probability_with_extra_delay(message, target, now, processing_delay, 0.0)
}

/// Like [`success_probability`] but with `extra_delay_ms` added to the future
/// delay — used for the `EB'` computation where the extra delay is the
/// first-send estimate `FT` (eq. 6–7).
pub fn success_probability_with_extra_delay(
    message: &Message,
    target: &MatchedTarget,
    now: SimTime,
    processing_delay: Duration,
    extra_delay_ms: f64,
) -> f64 {
    if target.allowed_delay == Duration::MAX {
        return 1.0;
    }
    let elapsed = message.elapsed(now);
    if elapsed > target.allowed_delay {
        return 0.0;
    }
    let budget_ms = (target.allowed_delay - elapsed).as_millis_f64() - extra_delay_ms;
    if budget_ms <= 0.0 {
        return 0.0;
    }
    target
        .stats
        .future_delay_ms(message.size_kb, processing_delay)
        .cdf(budget_ms)
}

/// The Expected Benefit of sending the message first (eq. 3).
pub fn expected_benefit(
    message: &Message,
    targets: &[MatchedTarget],
    now: SimTime,
    processing_delay: Duration,
) -> f64 {
    targets
        .iter()
        .map(|t| success_probability(message, t, now, processing_delay) * t.price.as_f64())
        .sum()
}

/// The Expected Benefit of sending the message *second* on the current broker
/// (eq. 8), where `first_send_estimate_ms` is the paper's `FT`.
pub fn expected_benefit_delayed(
    message: &Message,
    targets: &[MatchedTarget],
    now: SimTime,
    processing_delay: Duration,
    first_send_estimate_ms: f64,
) -> f64 {
    targets
        .iter()
        .map(|t| {
            success_probability_with_extra_delay(
                message,
                t,
                now,
                processing_delay,
                first_send_estimate_ms,
            ) * t.price.as_f64()
        })
        .sum()
}

/// The Postponing Cost `PC = EB − EB'` (eq. 9).
pub fn postponing_cost(
    message: &Message,
    targets: &[MatchedTarget],
    now: SimTime,
    processing_delay: Duration,
    first_send_estimate_ms: f64,
) -> f64 {
    expected_benefit(message, targets, now, processing_delay)
        - expected_benefit_delayed(
            message,
            targets,
            now,
            processing_delay,
            first_send_estimate_ms,
        )
}

/// The combined metric `EBPC = r·EB + (1−r)·PC` (eq. 10).
pub fn ebpc(
    message: &Message,
    targets: &[MatchedTarget],
    now: SimTime,
    processing_delay: Duration,
    first_send_estimate_ms: f64,
    r: f64,
) -> f64 {
    let eb = expected_benefit(message, targets, now, processing_delay);
    let eb_delayed = expected_benefit_delayed(
        message,
        targets,
        now,
        processing_delay,
        first_send_estimate_ms,
    );
    let pc = eb - eb_delayed;
    r * eb + (1.0 - r) * pc
}

/// The best success probability across all targets — the quantity compared to
/// ε in the invalid-message test (eq. 11): the message is deleted when even
/// its *most promising* target is below ε.
pub fn max_success_probability(
    message: &Message,
    targets: &[MatchedTarget],
    now: SimTime,
    processing_delay: Duration,
) -> f64 {
    targets
        .iter()
        .map(|t| success_probability(message, t, now, processing_delay))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdps_overlay::pathstats::PathStats;
    use bdps_stats::normal::Normal;
    use bdps_types::id::{MessageId, PublisherId, SubscriberId, SubscriptionId};
    use bdps_types::money::Price;
    use std::sync::Arc;

    const PD: Duration = Duration::from_millis(2);

    fn msg(publish_secs: u64) -> Arc<Message> {
        Arc::new(
            Message::builder(MessageId::new(1), PublisherId::new(0))
                .publish_time(SimTime::from_secs(publish_secs))
                .size_kb(50.0)
                .build(),
        )
    }

    fn target(allowed_secs: u64, price: i64, hops: u32, rate: f64) -> MatchedTarget {
        let mut stats = PathStats::local();
        for _ in 0..hops {
            stats = stats.extend(Normal::new(rate, 20.0));
        }
        MatchedTarget {
            subscription: SubscriptionId::new(0),
            subscriber: SubscriberId::new(0),
            price: Price::from_units(price),
            allowed_delay: Duration::from_secs(allowed_secs),
            stats,
        }
    }

    #[test]
    fn success_probability_reference_point() {
        // 1 hop at mean 60 ms/KB, sigma 20: a 50 KB message has mean 3000 ms,
        // sigma 1000 ms (+2 ms PD). A 3002 ms budget sits exactly at the mean.
        let m = msg(0);
        let t = MatchedTarget {
            allowed_delay: Duration::from_millis(3_002),
            ..target(10, 1, 1, 60.0)
        };
        let p = success_probability(&m, &t, SimTime::ZERO, PD);
        assert!((p - 0.5).abs() < 1e-6, "p = {p}");
    }

    #[test]
    fn success_decreases_as_time_passes() {
        let m = msg(0);
        let t = target(10, 1, 2, 60.0);
        let early = success_probability(&m, &t, SimTime::from_secs(1), PD);
        let late = success_probability(&m, &t, SimTime::from_secs(6), PD);
        assert!(early > late);
        // After the deadline the probability is exactly zero.
        assert_eq!(success_probability(&m, &t, SimTime::from_secs(11), PD), 0.0);
    }

    #[test]
    fn unbounded_target_always_succeeds() {
        let m = msg(0);
        let t = MatchedTarget {
            allowed_delay: Duration::MAX,
            ..target(10, 1, 2, 60.0)
        };
        assert_eq!(
            success_probability(&m, &t, SimTime::from_secs(500), PD),
            1.0
        );
    }

    #[test]
    fn expected_benefit_sums_price_weighted_probabilities() {
        let m = msg(0);
        // A target that (almost) surely succeeds and one that surely fails.
        let sure = target(600, 3, 1, 60.0);
        let hopeless = MatchedTarget {
            allowed_delay: Duration::from_millis(10),
            ..target(1, 2, 4, 90.0)
        };
        let eb = expected_benefit(&m, &[sure.clone(), hopeless.clone()], SimTime::ZERO, PD);
        assert!((eb - 3.0).abs() < 1e-3, "eb = {eb}");
        // EB scales with price.
        let pricier = MatchedTarget {
            price: Price::from_units(6),
            ..sure
        };
        let eb2 = expected_benefit(&m, &[pricier], SimTime::ZERO, PD);
        assert!((eb2 - 6.0).abs() < 2e-3);
        assert_eq!(expected_benefit(&m, &[], SimTime::ZERO, PD), 0.0);
    }

    #[test]
    fn postponing_cost_is_nonnegative_and_higher_for_urgent_messages() {
        let m = msg(0);
        let ft = 50.0 * 75.0; // FT: 50 KB at 75 ms/KB
                              // Urgent: the deadline barely fits the path.
        let urgent = target(4, 1, 1, 60.0);
        // Relaxed: plenty of slack.
        let relaxed = target(60, 1, 1, 60.0);
        let pc_urgent = postponing_cost(&m, &[urgent], SimTime::ZERO, PD, ft);
        let pc_relaxed = postponing_cost(&m, &[relaxed], SimTime::ZERO, PD, ft);
        assert!(pc_urgent >= 0.0);
        assert!(pc_relaxed >= 0.0);
        assert!(
            pc_urgent > pc_relaxed,
            "urgent {pc_urgent} vs relaxed {pc_relaxed}"
        );
        // Postponing an already-hopeless message costs nothing.
        let hopeless = MatchedTarget {
            allowed_delay: Duration::from_millis(1),
            ..target(1, 1, 3, 90.0)
        };
        let pc_hopeless = postponing_cost(&m, &[hopeless], SimTime::ZERO, PD, ft);
        assert!(pc_hopeless.abs() < 1e-9);
    }

    #[test]
    fn ebpc_interpolates_between_pc_and_eb() {
        let m = msg(0);
        let ft = 3_750.0;
        let targets = vec![target(15, 2, 2, 60.0), target(30, 1, 1, 60.0)];
        let eb = expected_benefit(&m, &targets, SimTime::ZERO, PD);
        let pc = postponing_cost(&m, &targets, SimTime::ZERO, PD, ft);
        let at_zero = ebpc(&m, &targets, SimTime::ZERO, PD, ft, 0.0);
        let at_one = ebpc(&m, &targets, SimTime::ZERO, PD, ft, 1.0);
        let mid = ebpc(&m, &targets, SimTime::ZERO, PD, ft, 0.5);
        assert!((at_zero - pc).abs() < 1e-12);
        assert!((at_one - eb).abs() < 1e-12);
        assert!((mid - 0.5 * (eb + pc)).abs() < 1e-12);
    }

    #[test]
    fn max_success_probability_is_the_epsilon_test_quantity() {
        let m = msg(0);
        let good = target(60, 1, 1, 60.0);
        let bad = MatchedTarget {
            allowed_delay: Duration::from_millis(5),
            ..target(1, 1, 3, 90.0)
        };
        let p = max_success_probability(&m, &[bad.clone(), good], SimTime::ZERO, PD);
        assert!(p > 0.99);
        let only_bad = max_success_probability(&m, &[bad], SimTime::ZERO, PD);
        assert!(only_bad < 5e-4, "only_bad = {only_bad}");
        assert_eq!(max_success_probability(&m, &[], SimTime::ZERO, PD), 0.0);
    }

    #[test]
    fn delayed_benefit_never_exceeds_immediate_benefit() {
        let m = msg(0);
        for allowed in [3u64, 5, 10, 30, 60] {
            let t = vec![target(allowed, 2, 2, 75.0)];
            let eb = expected_benefit(&m, &t, SimTime::ZERO, PD);
            let ebd = expected_benefit_delayed(&m, &t, SimTime::ZERO, PD, 3_750.0);
            assert!(ebd <= eb + 1e-12, "allowed {allowed}: {ebd} > {eb}");
        }
    }
}
