//! # bdps — Bounded-Delay Publish/Subscribe
//!
//! Facade crate re-exporting the whole BDPS workspace. See the README for a
//! tour and the individual crates for details:
//!
//! * [`types`] — identifiers, simulated time, attribute values, QoS.
//! * [`stats`] — probability distributions, estimators, arrival processes.
//! * [`filter`] — content-based subscription language and matching index.
//! * [`net`] — link bandwidth models and bandwidth measurement.
//! * [`overlay`] — broker overlay, topologies, routing, subscription tables.
//! * [`core`] — the pluggable `SchedulingStrategy` surface with the paper's
//!   EB / PC / EBPC strategies, the FIFO / RL baselines and the strategy
//!   registry.
//! * [`sim`] — discrete-event simulator, workloads, the fluent
//!   `Simulation::builder()` experiment API and the sweep runner.

pub use bdps_core as core;
pub use bdps_filter as filter;
pub use bdps_net as net;
pub use bdps_overlay as overlay;
pub use bdps_sim as sim;
pub use bdps_stats as stats;
pub use bdps_types as types;

/// Convenience prelude pulling in the most commonly used items of every crate.
pub mod prelude {
    pub use bdps_core::prelude::*;
    pub use bdps_filter::prelude::*;
    pub use bdps_net::prelude::*;
    pub use bdps_overlay::prelude::*;
    pub use bdps_sim::prelude::*;
    pub use bdps_stats::prelude::*;
    pub use bdps_types::prelude::*;
}
