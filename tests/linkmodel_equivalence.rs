//! Differential-oracle suite for the pluggable link-model layer.
//!
//! Transfer-time computation moved behind the [`LinkModel`] trait:
//! `ConstantDelay` reproduces the original per-transfer sampled-rate
//! behaviour (one RNG draw per transfer, exclusive link occupancy) and is
//! the oracle; `FairShare` admits up to a cap of concurrent flows per link
//! and recomputes every in-flight completion time at each flow arrival and
//! departure. This suite holds the refactor to three claims:
//!
//! 1. **The trait path is invisible.** A builder that never mentions link
//!    models and one that selects `constant` explicitly (by kind, by name,
//!    and through a [`LinkModelRegistry`]) produce bit-identical
//!    [`SimulationReport`]s across seeds × adversarial scenarios ×
//!    schedulers × layouts. (`tests/golden.rs` separately pins the absolute
//!    numbers, so together these prove the trait dispatch changed nothing.)
//! 2. **Fair sharing is deterministic and conservative.** Reports are
//!    scheduler- and layout-independent, every delivered copy is accounted
//!    for, and on a drained run each link's busy time equals the dedicated
//!    service it handed out (`busy_us ≈ work_done_us`): equal sharing moves
//!    completion instants around but never creates or destroys service.
//! 3. **Unsupported combinations fail loudly.** The sharded executor's
//!    PD-lookahead argument breaks under flow re-scheduling, so fair-share
//!    × multi-shard is a structured [`SimError`], not silent drift.

use bdps::prelude::*;
use bdps::sim::sched::EventQueueKind;
use bdps::sim::try_run_sharded;

mod common;
use common::{flap_storm, small_mesh_link_count};

/// The scenarios that stress the link layer hardest: churn rewrites the
/// delivery targets mid-flight, link-flap voids and requeues in-flight
/// copies, chaos interleaves both with bursts.
const SCENARIOS: [&str; 3] = ["churn", "link-flap", "chaos"];

fn builder(scenario_name: &str, queue: EventQueueKind, layout: TableLayout) -> SimulationBuilder {
    Simulation::builder()
        .layered_mesh(bdps::overlay::topology::LayeredMeshConfig::small())
        .ssd(12.0)
        .duration(Duration::from_secs(240))
        .strategy(StrategyKind::MaxEbpc)
        .scenario_named(scenario_name)
        .unwrap_or_else(|_| panic!("{scenario_name} is a builtin scenario"))
        .event_queue(queue)
        .table_layout(layout)
}

#[test]
fn constant_delay_through_the_trait_is_bit_identical_to_the_default() {
    // Every way of asking for the constant model — saying nothing, the
    // typed kind, the registry name, an alias, an explicit registry — must
    // produce the same report, whole-report compared (per-phase breakdowns
    // and the new per-link counters included).
    let registry = LinkModelRegistry::default();
    for scenario in SCENARIOS {
        for seed in 1..=10 {
            for queue in EventQueueKind::ALL {
                for layout in TableLayout::ALL {
                    let implicit = builder(scenario, queue, layout).seed(seed).report();
                    let typed = builder(scenario, queue, layout)
                        .link_model(LinkModelKind::Constant)
                        .seed(seed)
                        .report();
                    assert_eq!(
                        implicit,
                        typed,
                        "explicit constant kind drifted from the default \
                         ({scenario}, seed {seed}, {} queue, {} layout)",
                        queue.name(),
                        layout.name()
                    );
                    let named = builder(scenario, queue, layout)
                        .link_model_named("delay")
                        .expect("`delay` is a builtin alias")
                        .seed(seed)
                        .report();
                    assert_eq!(implicit, named, "name-based selection drifted ({scenario})");
                    let via_registry = builder(scenario, queue, layout)
                        .link_model_from(&registry, "CONSTANT")
                        .expect("registry lookup is case-insensitive")
                        .seed(seed)
                        .report();
                    assert_eq!(
                        implicit, via_registry,
                        "registry selection drifted ({scenario})"
                    );
                }
            }
        }
    }
}

#[test]
fn constant_delay_links_are_exclusive_and_accounted() {
    // The exclusive model's counters are degenerate by construction: never
    // more than one flow in flight, mean concurrency exactly 1 while busy.
    for scenario in SCENARIOS {
        let report = builder(scenario, EventQueueKind::default(), TableLayout::Dense)
            .seed(3)
            .report();
        assert!(!report.links.is_empty(), "per-link counters are reported");
        for link in &report.links {
            assert!(link.peak_flows <= 1, "exclusive model admits one flow");
            if link.transmissions > 0 {
                assert!(
                    (link.mean_concurrency - 1.0).abs() < 1e-9,
                    "busy time and flow time coincide under exclusivity \
                     ({scenario}, link {})",
                    link.link
                );
            }
        }
    }
}

#[test]
fn fair_share_reports_are_scheduler_and_layout_independent() {
    // Flow re-scheduling leans on the engine's stale-event design: a
    // re-scheduled completion leaves the superseded event in the queue as a
    // no-op. Both schedulers must pop the live ones in the same (time, key)
    // order, and the sparse layout must not perturb which copies contend.
    for scenario in SCENARIOS {
        for seed in [2u64, 5, 8] {
            let reference = builder(scenario, EventQueueKind::BinaryHeap, TableLayout::Dense)
                .link_model(LinkModelKind::FairShare)
                .seed(seed)
                .report();
            for queue in EventQueueKind::ALL {
                for layout in TableLayout::ALL {
                    let candidate = builder(scenario, queue, layout)
                        .link_model(LinkModelKind::FairShare)
                        .seed(seed)
                        .report();
                    assert_eq!(
                        reference,
                        candidate,
                        "fair-share drifted ({scenario}, seed {seed}, {} queue, {} layout)",
                        queue.name(),
                        layout.name()
                    );
                }
            }
        }
    }
}

#[test]
fn fair_share_conserves_link_service_on_drained_runs() {
    // Flow-level conservation: once nothing is left in flight, the time a
    // link spent busy must equal the dedicated-link service it delivered.
    // Equal sharing drains `elapsed / n` from each of n flows per elapsed
    // microsecond, so the two integrals agree up to the ±1 µs the engine
    // quantises each re-scheduled completion instant by — give each
    // transfer a generous 16 µs of slack.
    for scenario in ["static", "churn", "flash-crowd"] {
        let outcome = builder(scenario, EventQueueKind::default(), TableLayout::Dense)
            .link_model(LinkModelKind::FairShare)
            .seed(7)
            .build()
            .run();
        assert_eq!(
            outcome.in_flight_at_end, 0,
            "{scenario}: run must drain for the conservation law to bind"
        );
        outcome.check_conservation().unwrap();
        outcome.check_no_duplicates().unwrap();
        let mut contended = 0u64;
        for (i, load) in outcome.link_loads.iter().enumerate() {
            let slack = 16.0 * (load.transmissions as f64 + 1.0);
            let diff = (load.busy_us as f64 - load.work_done_us).abs();
            assert!(
                diff <= slack,
                "{scenario}: link {i} leaked service: busy {} µs vs work {:.1} µs \
                 over {} transfers",
                load.busy_us,
                load.work_done_us,
                load.transmissions
            );
            contended = contended.max(load.peak_flows);
        }
        assert!(
            contended >= 2,
            "{scenario}: the workload never actually shared a link"
        );
    }
}

#[test]
fn fair_share_saturates_a_link_under_flash_crowd() {
    // The acceptance scenario: a publisher burst under fair sharing drives
    // at least one link to (near-)continuous occupancy, visible through the
    // report's utilisation and queueing counters. The publishing rate is
    // doubled relative to the differential runs above — the point here is
    // congestion, not equivalence.
    let report = builder("flash-crowd", EventQueueKind::default(), TableLayout::Dense)
        .ssd(24.0)
        .link_model(LinkModelKind::FairShare)
        .seed(7)
        .report();
    let peak = report.max_link_utilisation();
    assert!(
        peak >= 0.9,
        "flash crowd should saturate a link (max utilisation {peak:.3})"
    );
    let busiest = report
        .links
        .iter()
        .max_by(|a, b| a.utilisation.total_cmp(&b.utilisation))
        .expect("links are reported");
    assert!(
        busiest.peak_flows >= 2,
        "the saturated link must actually be shared"
    );
    assert!(
        busiest.peak_queue > 0,
        "saturation shows up as sender-side queueing"
    );
    // And the rendering helper agrees with the raw counters.
    let table = report.link_table(3);
    assert!(
        table.contains("util %") && table.contains(&busiest.link.to_string()),
        "{table}"
    );
}

#[test]
fn fair_share_under_the_flap_storm_stays_deterministic_and_conservative() {
    // Link failures void in-flight *flows* (not just exclusive transfers):
    // every voided copy must be requeued intact and the partial service it
    // consumed stay on the books.
    let links = small_mesh_link_count();
    for seed in [3u64, 7] {
        let storm = flap_storm(seed, links, 240);
        let reference = builder("static", EventQueueKind::BinaryHeap, TableLayout::Dense)
            .scenario(storm.clone())
            .link_model(LinkModelKind::FairShare)
            .seed(seed)
            .report();
        assert!(
            reference.requeued > 0,
            "storm seed {seed} never caught a flow in flight"
        );
        for queue in EventQueueKind::ALL {
            for layout in TableLayout::ALL {
                let candidate = builder("static", queue, layout)
                    .scenario(storm.clone())
                    .link_model(LinkModelKind::FairShare)
                    .seed(seed)
                    .report();
                assert_eq!(
                    reference,
                    candidate,
                    "storm drifted (seed {seed}, {} queue, {} layout)",
                    queue.name(),
                    layout.name()
                );
            }
        }
        let outcome = builder("static", EventQueueKind::BinaryHeap, TableLayout::Dense)
            .scenario(storm)
            .link_model(LinkModelKind::FairShare)
            .seed(seed)
            .build()
            .run();
        outcome.check_conservation().unwrap();
        outcome.check_no_duplicates().unwrap();
    }
}

#[test]
fn sharded_execution_rejects_non_constant_models_up_front() {
    // Satellite bugfix pin: fair-share completion re-scheduling can move a
    // cross-shard arrival inside the PD-lookahead window, so the sharded
    // executor refuses the combination with a structured error instead of
    // silently diverging.
    let sim = builder("chaos", EventQueueKind::default(), TableLayout::Dense)
        .link_model(LinkModelKind::FairShare)
        .seed(1)
        .build();
    match try_run_sharded(sim, 4) {
        Err(SimError::ShardedLinkModelUnsupported { model }) => {
            assert_eq!(model, "fair-share");
        }
        Err(other) => panic!("wrong error: {other}"),
        Ok(_) => panic!("fair-share × shards > 1 must be rejected"),
    }
    // The constant model keeps its multi-core path, and a single fair-share
    // shard is just the sequential loop — both stay fine.
    let constant = builder("chaos", EventQueueKind::default(), TableLayout::Dense)
        .seed(1)
        .build();
    assert!(try_run_sharded(constant, 4).is_ok());
    let fair_sequential = builder("chaos", EventQueueKind::default(), TableLayout::Dense)
        .link_model(LinkModelKind::FairShare)
        .seed(1)
        .build();
    assert!(try_run_sharded(fair_sequential, 1).is_ok());
}

#[test]
fn link_model_round_trips_through_config_registry_and_names() {
    let config = Simulation::builder()
        .link_model(LinkModelKind::FairShare)
        .build_config();
    assert_eq!(config.link_model, LinkModelKind::FairShare);
    let rebuilt = SimulationBuilder::from_config(&config).build_config();
    assert_eq!(rebuilt, config);
    // The default stays the oracle, so configs written before the link-model
    // axis existed keep their original meaning.
    assert_eq!(
        Simulation::builder().build_config().link_model,
        LinkModelKind::Constant
    );
    for kind in LinkModelKind::ALL {
        assert_eq!(LinkModelKind::from_name(kind.name()), Some(kind));
    }
    let registry = LinkModelRegistry::default();
    for (alias, kind) in [
        ("const", LinkModelKind::Constant),
        ("Fair-Share", LinkModelKind::FairShare),
        ("fs", LinkModelKind::FairShare),
    ] {
        assert_eq!(registry.resolve(alias), Some(kind), "alias {alias}");
    }
    assert!(registry.resolve("token-bucket").is_none());
    let err = Simulation::builder()
        .link_model_named("token-bucket")
        .expect_err("unknown model is an error");
    for known in registry.names() {
        assert!(
            err.to_string().contains(known),
            "the error lists the registry: {err}"
        );
    }
}
