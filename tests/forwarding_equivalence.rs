//! Differential-oracle suite for aggregate-scoped forwarding.
//!
//! Under [`ForwardingMode::Aggregate`] the publisher's broker no longer
//! walks the global match index at publish time: it consults only the
//! per-edge covering summaries, stamps interior copies with sentinel
//! aggregate scopes, and leaves subscriber expansion to the edge brokers.
//! Covers admit false positives, so unlike the table-layout axis the two
//! modes are **not** bit-identical — hop traffic, drop breakdowns and
//! per-phase counters may legitimately differ. What must never differ is
//! the *delivery set*: the exact set of `(message, subscriber)` pairs
//! delivered, and with it the total earning. This suite holds aggregate
//! forwarding to that claim across {scenario × scheduler × rebuild policy}
//! seeds, with the exact mode (both layouts) as the oracle.
//!
//! The sweep runs on uncongested fixed-rate links so that no copy expires
//! or is shed as unlikely in either mode — expiry under congestion is
//! timing-dependent and would make pair-set equality vacuous rather than
//! diagnostic. Congested behaviour is covered by the engine's conservation
//! and duplicate audits, which run here on every outcome as well.

use bdps::overlay::topology::{LayeredMeshConfig, Topology};
use bdps::prelude::*;
use bdps::sim::sched::EventQueueKind;
use bdps::sim::try_run_sharded;

mod common;
use common::delivered_pairs;

fn small_topology(seed: u64) -> Topology {
    // 10 ms/KB -> a 50 KB message takes 500 ms per hop; nothing congests.
    Topology::layered_mesh(
        &LayeredMeshConfig::small(),
        &mut SimRng::seed_from(seed),
        |_| LinkQuality::new(FixedRate::new(10.0)),
    )
    .unwrap()
}

fn build(
    scenario: &DynamicScenario,
    forwarding: ForwardingMode,
    layout: TableLayout,
    policy: RebuildPolicy,
    queue: EventQueueKind,
    seed: u64,
) -> Simulation {
    let mut workload = WorkloadConfig::paper_ssd(8.0);
    workload.duration = Duration::from_secs(300);
    workload.arrivals = ArrivalKind::Deterministic;
    Simulation::with_scenario(
        small_topology(seed),
        workload,
        SchedulerConfig::paper(StrategyKind::MaxEbpc),
        SimRng::seed_from(seed),
        EstimationError::NONE,
        scenario.clone(),
    )
    .with_table_layout(layout)
    .with_rebuild_policy(policy)
    .with_event_queue(queue)
    .with_forwarding(forwarding)
}

fn audited(sim: Simulation) -> SimulationOutcome {
    let outcome = sim.run();
    outcome.check_conservation().unwrap();
    outcome.check_no_duplicates().unwrap();
    outcome
}

/// The tentpole oracle: for every {scenario × policy × scheduler × seed}
/// point, aggregate forwarding over the sparse layout delivers exactly the
/// `(message, subscriber)` pairs — and earns exactly the money — of exact
/// forwarding over both layouts.
#[test]
fn aggregate_forwarding_preserves_delivery_set_and_earning() {
    let registry = ScenarioRegistry::builtin();
    let churn = registry.resolve("churn").expect("churn is builtin");
    let scenarios = [
        ("static", DynamicScenario::static_scenario()),
        ("churn", churn),
    ];
    for (scenario_name, scenario) in &scenarios {
        for policy in RebuildPolicy::ALL {
            for queue in EventQueueKind::ALL {
                for seed in 1..=4u64 {
                    let exact = audited(build(
                        scenario,
                        ForwardingMode::Exact,
                        TableLayout::Sparse,
                        policy,
                        queue,
                        seed,
                    ));
                    let aggregate = audited(build(
                        scenario,
                        ForwardingMode::Aggregate,
                        TableLayout::Sparse,
                        policy,
                        queue,
                        seed,
                    ));
                    let dense = audited(build(
                        scenario,
                        ForwardingMode::Exact,
                        TableLayout::Dense,
                        policy,
                        queue,
                        seed,
                    ));

                    let pairs = delivered_pairs(&exact);
                    let ctx = format!(
                        "({scenario_name}, seed {seed}, {} policy, {} queue)",
                        policy.name(),
                        queue.name()
                    );
                    // Meaningful run: something delivered, nothing expired or
                    // shed in the oracle — otherwise the equality is vacuous.
                    assert!(!pairs.is_empty(), "oracle delivered nothing {ctx}");
                    assert_eq!(exact.dropped_expired(), 0, "oracle congested {ctx}");
                    assert_eq!(exact.dropped_unlikely(), 0, "oracle shed copies {ctx}");
                    assert_eq!(exact.tracker.total_late(), 0, "oracle ran late {ctx}");

                    assert_eq!(
                        pairs,
                        delivered_pairs(&aggregate),
                        "aggregate forwarding changed the delivery set {ctx}"
                    );
                    assert_eq!(
                        pairs,
                        delivered_pairs(&dense),
                        "dense oracle disagrees with the sparse oracle {ctx}"
                    );
                    assert_eq!(
                        exact.tracker.total_earning(),
                        aggregate.tracker.total_earning(),
                        "aggregate forwarding changed the earning {ctx}"
                    );
                    assert_eq!(
                        aggregate.tracker.total_late(),
                        0,
                        "aggregate ran late while the oracle did not {ctx}"
                    );
                    // Exact mode never records false-positive traffic.
                    assert_eq!(exact.false_positive_forwards(), 0);
                    assert_eq!(exact.false_positive_drops_at_edge(), 0);
                    // Every false-positive forward ends as an edge drop, so
                    // the forward count is bounded by the drop count.
                    assert!(
                        aggregate.false_positive_forwards()
                            <= aggregate.false_positive_drops_at_edge(),
                        "unaccounted false-positive traffic {ctx}"
                    );
                }
            }
        }
    }
}

#[test]
fn forwarding_mode_round_trips_through_names_and_config() {
    for mode in ForwardingMode::ALL {
        assert_eq!(ForwardingMode::from_name(mode.name()), Some(mode));
    }
    assert_eq!(
        ForwardingMode::from_name("agg"),
        Some(ForwardingMode::Aggregate)
    );
    assert!(ForwardingMode::from_name("bogus").is_none());

    let config = Simulation::builder()
        .forwarding(ForwardingMode::Aggregate)
        .table_layout(TableLayout::Sparse)
        .build_config();
    assert_eq!(config.forwarding, ForwardingMode::Aggregate);
    let rebuilt = SimulationBuilder::from_config(&config).build_config();
    assert_eq!(rebuilt, config);
    // The default stays exact (the oracle); configs predating the field
    // deserialise to it via `#[serde(default)]`.
    assert_eq!(
        Simulation::builder().build_config().forwarding,
        ForwardingMode::Exact
    );
}

#[test]
fn aggregate_forwarding_rejects_the_dense_layout() {
    let sim = build(
        &DynamicScenario::static_scenario(),
        ForwardingMode::Aggregate,
        TableLayout::Dense,
        RebuildPolicy::Full,
        EventQueueKind::Calendar,
        1,
    );
    match sim.try_run() {
        Err(SimError::AggregateForwardingNeedsSparseLayout) => {}
        other => panic!("dense aggregate run must be rejected, got {other:?}"),
    }
}

#[test]
fn aggregate_forwarding_rejects_sharded_execution() {
    let sim = build(
        &DynamicScenario::static_scenario(),
        ForwardingMode::Aggregate,
        TableLayout::Sparse,
        RebuildPolicy::Full,
        EventQueueKind::Calendar,
        1,
    );
    match try_run_sharded(sim, 2) {
        Err(SimError::ShardedForwardingUnsupported) => {}
        other => panic!("sharded aggregate run must be rejected, got {other:?}"),
    }
}
