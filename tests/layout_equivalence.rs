//! Differential-oracle suite for the sparse covering-aggregated table
//! layout.
//!
//! Brokers materialise their subscription tables under one of two
//! [`TableLayout`]s: `Dense` (one replicated entry per subscription on every
//! broker — the original implementation, kept as the reference) and `Sparse`
//! (full entries only for locally attached subscribers, one covering
//! aggregate per remote destination, subscription metadata in a shared
//! registry). The two are claimed to be **bit-identical**; this suite holds
//! the sparse layout to that claim the same way `tests/rebuild_equivalence.rs`
//! holds the incremental rebuild to the full-rebuild oracle: run the same
//! seeds through the most adversarial dynamic scenarios under both layouts
//! and require the *entire* [`SimulationReport`] — per-phase breakdowns
//! included — to be equal.
//!
//! The layout axis is crossed with the two existing differential axes —
//! rebuild policy and event scheduler — because the sparse layout rewrites
//! exactly the paths those axes exercise: link events patch aggregates
//! instead of per-subscription entries, and churn updates the shared
//! registry instead of every broker's table. A drift that only shows up
//! under (sparse × incremental × calendar) must still fail loudly here.

use bdps::prelude::*;
use bdps::sim::sched::EventQueueKind;

mod common;
use common::{delivered_pairs, flap_storm, small_mesh_link_count};

fn report(
    scenario: &DynamicScenario,
    layout: TableLayout,
    policy: RebuildPolicy,
    queue: EventQueueKind,
    seed: u64,
) -> SimulationReport {
    Simulation::builder()
        .layered_mesh(bdps::overlay::topology::LayeredMeshConfig::small())
        .ssd(12.0)
        .duration(Duration::from_secs(240))
        .strategy(StrategyKind::MaxEbpc)
        .scenario(scenario.clone())
        .table_layout(layout)
        .rebuild_policy(policy)
        .event_queue(queue)
        .seed(seed)
        .report()
}

/// Runs one scenario over a seed range and asserts dense-vs-sparse report
/// equality, crossed with both event schedulers and both rebuild policies
/// (every combination must reproduce the dense report of the same
/// scheduler × policy cell).
fn assert_layouts_agree(scenario_name: &str, seeds: std::ops::RangeInclusive<u64>) {
    let registry = ScenarioRegistry::builtin();
    let scenario = registry
        .resolve(scenario_name)
        .unwrap_or_else(|| panic!("{scenario_name} is a builtin scenario"));
    for seed in seeds {
        for policy in RebuildPolicy::ALL {
            for queue in EventQueueKind::ALL {
                let dense = report(&scenario, TableLayout::Dense, policy, queue, seed);
                let sparse = report(&scenario, TableLayout::Sparse, policy, queue, seed);
                assert_eq!(
                    dense,
                    sparse,
                    "sparse layout drifted from the dense-table oracle \
                     ({scenario_name}, seed {seed}, {} policy, {} queue)",
                    policy.name(),
                    queue.name()
                );
            }
        }
    }
}

#[test]
fn link_flap_reports_are_layout_independent_on_seeds_1_to_10() {
    assert_layouts_agree("link-flap", 1..=10);
}

#[test]
fn blackout_reports_are_layout_independent_on_seeds_1_to_10() {
    // Blackouts are the mass-transition case: every aggregate disappears
    // when the mesh goes dark and must reappear with fresh routed fields on
    // recovery, exactly when the dense layout re-inserts every entry.
    assert_layouts_agree("blackout", 1..=10);
}

#[test]
fn churn_reports_are_layout_independent_on_seeds_1_to_10() {
    // Churn exercises the shared-registry path: joins register once
    // globally + expand at the edge, leaves must strip queued copies and
    // shrink aggregates identically to the dense per-broker removals.
    assert_layouts_agree("churn", 1..=10);
}

#[test]
fn chaos_reports_are_layout_independent_on_seeds_1_to_10() {
    // Chaos interleaves churn, bursts and link failures — a join during an
    // outage must become routable on recovery identically under both
    // layouts.
    assert_layouts_agree("chaos", 1..=10);
}

#[test]
fn chaos_is_layout_policy_and_scheduler_independent() {
    // The full cross: every layout × rebuild policy × event scheduler
    // combination must reproduce one reference report.
    let registry = ScenarioRegistry::builtin();
    let chaos = registry.resolve("chaos").expect("chaos is builtin");
    for seed in [4u64, 9] {
        let reference = report(
            &chaos,
            TableLayout::Dense,
            RebuildPolicy::Full,
            EventQueueKind::BinaryHeap,
            seed,
        );
        for layout in TableLayout::ALL {
            for policy in RebuildPolicy::ALL {
                for queue in EventQueueKind::ALL {
                    let candidate = report(&chaos, layout, policy, queue, seed);
                    assert_eq!(
                        reference,
                        candidate,
                        "chaos drifted (seed {seed}, {} layout, {} policy, {} queue)",
                        layout.name(),
                        policy.name(),
                        queue.name()
                    );
                }
            }
        }
    }
}

#[test]
fn flap_storm_is_layout_independent_across_policies_and_schedulers() {
    let links = small_mesh_link_count();
    for seed in [3u64, 7] {
        let storm = flap_storm(seed, links, 240);
        let reference = report(
            &storm,
            TableLayout::Dense,
            RebuildPolicy::Full,
            EventQueueKind::BinaryHeap,
            seed,
        );
        for policy in RebuildPolicy::ALL {
            for queue in EventQueueKind::ALL {
                let candidate = report(&storm, TableLayout::Sparse, policy, queue, seed);
                assert_eq!(
                    reference,
                    candidate,
                    "flap storm drifted (seed {seed}, sparse layout, {} policy, {} queue)",
                    policy.name(),
                    queue.name()
                );
            }
        }
        assert!(
            reference.requeued > 0,
            "storm seed {seed} never caught a transfer in flight"
        );
    }
}

#[test]
fn sparse_runs_report_aggregate_counters() {
    // The observability half of the layout: aggregates exist, every local
    // delivery is an edge expansion, and the memory estimate shrinks.
    let run = |layout: TableLayout| {
        Simulation::builder()
            .layered_mesh(bdps::overlay::topology::LayeredMeshConfig::small())
            .ssd(10.0)
            .duration(Duration::from_secs(180))
            .strategy(StrategyKind::MaxEb)
            .scenario_named("chaos")
            .expect("chaos is builtin")
            .table_layout(layout)
            .seed(5)
            .build()
            .run()
    };
    let dense = run(TableLayout::Dense);
    let sparse = run(TableLayout::Sparse);
    // Bit-identical layouts also means bit-identical delivery sets — the
    // same pair oracle the forwarding suite uses.
    assert_eq!(delivered_pairs(&dense), delivered_pairs(&sparse));
    assert_eq!(dense.aggregate_entries, 0);
    assert_eq!(dense.expanded_at_edge(), 0);
    assert!(sparse.aggregate_entries > 0);
    assert_eq!(
        sparse.expanded_at_edge(),
        sparse.tracker.total_on_time() + sparse.tracker.total_late()
    );
    assert!(sparse.table_bytes_estimate < dense.table_bytes_estimate);
    assert!(dense.table_bytes_estimate > 0);
}

#[test]
fn table_layout_round_trips_through_config_and_registry_names() {
    let config = Simulation::builder()
        .table_layout(TableLayout::Sparse)
        .build_config();
    assert_eq!(config.table_layout, TableLayout::Sparse);
    let rebuilt = SimulationBuilder::from_config(&config).build_config();
    assert_eq!(rebuilt, config);
    // Default stays dense (the oracle).
    assert_eq!(
        Simulation::builder().build_config().table_layout,
        TableLayout::Dense
    );
    for layout in TableLayout::ALL {
        assert_eq!(TableLayout::from_name(layout.name()), Some(layout));
    }
    assert_eq!(
        TableLayout::from_name("covering"),
        Some(TableLayout::Sparse)
    );
    assert!(TableLayout::from_name("bogus").is_none());
}
