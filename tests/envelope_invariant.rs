//! QoS-envelope consistency under live churn, at integration scale.
//!
//! Every [`AggregateEntry`] carries a `QosEnvelope` — the min remaining
//! allowed delay, earning sum/max and member count over its edge group —
//! maintained incrementally by epoch-indexed prefix folds as members join
//! and leave. The engine's table audit recomputes each envelope from the
//! raw member records (an independent fold, not the prefix machinery) and
//! fails on any divergence; the model checker runs that audit after every
//! event of every interleaving on tiny models. This suite runs the same
//! audit on *congested, realistically sized* churn runs in aggregate
//! forwarding mode, stepping the engine and auditing at a fixed event
//! cadence plus at quiescence — the scale where prefix-rebuild bugs that
//! tiny models cannot reach (long member lists, interleaved joins and
//! leaves on one edge group, epoch reuse across retargets) would surface.
//!
//! The `bench-perf` CI job runs this suite in release mode before the
//! gated throughput bench, so an envelope regression fails CI before it
//! can masquerade as a performance change.

use bdps::overlay::sparse::TableLayout;
use bdps::overlay::topology::LayeredMeshConfig;
use bdps::prelude::*;
use bdps::sim::sched::EventQueueKind;

/// Steps `sim` to quiescence, auditing tables (routing, per-broker table
/// rebuild equality, aggregate envelopes vs member records) every
/// `cadence` events and once more at the end. Returns the outcome.
fn run_audited(mut sim: Simulation, cadence: u64) -> SimulationOutcome {
    sim = sim.prepare();
    let limit = sim.hard_stop();
    let mut applied = 0u64;
    while sim.step_next(limit) {
        applied += 1;
        if applied.is_multiple_of(cadence) {
            sim.audit_tables()
                .unwrap_or_else(|e| panic!("table audit failed after {applied} events: {e}"));
        }
    }
    sim.audit_tables()
        .unwrap_or_else(|e| panic!("table audit failed at quiescence ({applied} events): {e}"));
    assert!(
        applied > 0,
        "simulation applied no events — the audit is vacuous"
    );
    sim.into_outcome()
}

fn congested_aggregate(scenario: &str, seed: u64) -> Simulation {
    // Publishing at 30 msgs/min saturates the small mesh, so stamped
    // envelope bounds actively rank and shed interior copies while churn
    // mutates the very groups the stamps were folded from.
    Simulation::builder()
        .layered_mesh(LayeredMeshConfig::small())
        .ssd(30.0)
        .duration(Duration::from_secs(300))
        .strategy(StrategyKind::MaxEb)
        .scenario_named(scenario)
        .expect("scenario is builtin")
        .event_queue(EventQueueKind::Calendar)
        .table_layout(TableLayout::Sparse)
        .forwarding(ForwardingMode::Aggregate)
        .seed(seed)
        .build()
}

/// Churn is the scenario the envelopes exist for: joins and leaves hit
/// edge groups while publications are in flight, so the incremental
/// prefix folds are exercised against the scratch fold on every audit.
#[test]
fn envelopes_stay_consistent_under_churn() {
    for seed in [7, 42, 20060816] {
        let outcome = run_audited(congested_aggregate("churn", seed), 32);
        outcome.check_conservation().unwrap();
        outcome.check_no_duplicates().unwrap();
        assert!(
            outcome.tracker.total_on_time() > 0,
            "seed {seed}: congested churn cell delivered nothing on time"
        );
    }
}

/// Chaos layers link failures and bursts on top of churn: retargets
/// rebuild aggregates (fresh envelopes from current members) while
/// leaves shrink them in place — the two maintenance paths interleave.
#[test]
fn envelopes_stay_consistent_under_chaos() {
    let outcome = run_audited(congested_aggregate("chaos", 20060816), 32);
    outcome.check_conservation().unwrap();
    outcome.check_no_duplicates().unwrap();
}
