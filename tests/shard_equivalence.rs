//! Differential-oracle suite for the sharded multi-core executor.
//!
//! The conservative time-window executor (`bdps::sim::shard`) partitions the
//! brokers into N shards advanced by worker threads; the single-threaded
//! loop is retained as the reference, exactly like `RebuildPolicy::Full` and
//! `TableLayout::Dense` before it. The claim this suite enforces: for any
//! seed × scenario × strategy, an N-shard run produces a **bit-identical**
//! [`SimulationReport`] to the 1-shard run — per-phase breakdowns, earning
//! sums and delay summaries included, which pins the executor's effect-log
//! replay to the sequential floating-point accumulation order.
//!
//! The shard axis is crossed with the existing differential axes (event
//! scheduler, table layout) because the sharded path leans on exactly what
//! they vary: per-shard calendar/heap queues must pop in the same
//! `(time, key)` order, and the sparse layout's shared population registry
//! is read concurrently by shard workers mid-window.

use bdps::core::config::StrategyKind;
use bdps::prelude::*;
use bdps::sim::sched::EventQueueKind;

/// Shard counts the suite holds to the sequential oracle. 1 is the oracle
/// itself (and exercises the builder's fallback path); 8 exceeds the small
/// mesh's per-layer broker counts, so some shards own a single broker.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

#[allow(clippy::too_many_arguments)]
fn report(
    scenario_name: &str,
    shards: usize,
    layout: TableLayout,
    queue: EventQueueKind,
    policy: RebuildPolicy,
    strategy: StrategyKind,
    seed: u64,
) -> SimulationReport {
    Simulation::builder()
        .layered_mesh(bdps::overlay::topology::LayeredMeshConfig::small())
        .ssd(12.0)
        .duration(Duration::from_secs(240))
        .strategy(strategy)
        .scenario_named(scenario_name)
        .unwrap_or_else(|_| panic!("{scenario_name} is a builtin scenario"))
        .table_layout(layout)
        .event_queue(queue)
        .rebuild_policy(policy)
        .shards(shards)
        .seed(seed)
        .report()
}

/// Runs one scenario over a seed range and asserts that every shard count
/// reproduces the sequential report bit-for-bit, crossed with the full
/// {event scheduler × rebuild policy × table layout} cell cross-product.
fn assert_shards_agree(scenario_name: &str, seeds: std::ops::RangeInclusive<u64>) {
    for seed in seeds {
        for queue in EventQueueKind::ALL {
            for policy in RebuildPolicy::ALL {
                for layout in TableLayout::ALL {
                    let oracle = report(
                        scenario_name,
                        1,
                        layout,
                        queue,
                        policy,
                        StrategyKind::MaxEbpc,
                        seed,
                    );
                    for shards in SHARD_COUNTS {
                        let sharded = report(
                            scenario_name,
                            shards,
                            layout,
                            queue,
                            policy,
                            StrategyKind::MaxEbpc,
                            seed,
                        );
                        assert_eq!(
                            sharded,
                            oracle,
                            "{scenario_name} seed {seed}: {shards}-shard run drifted from the \
                             sequential oracle under the {} scheduler / {} policy / {} layout",
                            queue.name(),
                            policy.name(),
                            layout.name()
                        );
                    }
                }
            }
        }
    }
}

// The three dynamic scenarios cover the three classes of global state the
// shard barriers must serialise: churn (shared population registry +
// subscription tables), link-flap (routing rebuilds + voided transfers) and
// chaos (all of it at once, interleaved).

#[test]
fn churn_reports_are_shard_count_invariant() {
    assert_shards_agree("churn", 1..=10);
}

#[test]
fn link_flap_reports_are_shard_count_invariant() {
    assert_shards_agree("link-flap", 1..=10);
}

#[test]
fn chaos_reports_are_shard_count_invariant() {
    assert_shards_agree("chaos", 1..=10);
}

/// The static scenario has no barriers at all after the publisher seeding —
/// the purest test of the window protocol itself (and of the per-entity RNG
/// stream discipline), across all five paper strategies.
#[test]
fn static_reports_are_shard_count_invariant_for_every_strategy() {
    for strategy in [
        StrategyKind::MaxEb,
        StrategyKind::MaxPc,
        StrategyKind::MaxEbpc,
        StrategyKind::Fifo,
        StrategyKind::RemainingLifetime,
    ] {
        for seed in 1..=3 {
            let oracle = Simulation::builder()
                .layered_mesh(bdps::overlay::topology::LayeredMeshConfig::small())
                .ssd(20.0)
                .duration(Duration::from_secs(240))
                .strategy(strategy)
                .seed(seed)
                .report();
            for shards in [2, 4, 8] {
                let sharded = Simulation::builder()
                    .layered_mesh(bdps::overlay::topology::LayeredMeshConfig::small())
                    .ssd(20.0)
                    .duration(Duration::from_secs(240))
                    .strategy(strategy)
                    .shards(shards)
                    .seed(seed)
                    .report();
                assert_eq!(
                    sharded,
                    oracle,
                    "static seed {seed}: {shards}-shard run drifted for {}",
                    strategy.label()
                );
            }
        }
    }
}
