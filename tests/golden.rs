//! Golden-report regression tests.
//!
//! These pin the *exact* metrics of fixed-seed runs across all five paper
//! strategies, so any refactor that silently changes seed behaviour —
//! event ordering, RNG stream discipline, matching semantics — shows up as
//! a loud diff instead of a quiet drift. The numbers were produced by the
//! simulator itself; when a change is *intended* to alter seed behaviour,
//! rerun the configuration below and update the table in the same commit.
//!
//! The configuration is a congested small mesh (publishing rate 20/min on
//! the small layered mesh) so the five strategies genuinely differentiate;
//! on an idle network they all pick the same messages and the golden values
//! would not distinguish them.

use bdps::core::config::StrategyKind;
use bdps::overlay::topology::LayeredMeshConfig;
use bdps::prelude::*;

#[derive(Debug, PartialEq, Eq)]
struct Golden {
    published: u64,
    interested: u64,
    on_time: u64,
    late: u64,
    /// Total earning in thousandths of a price unit (exact integer compare).
    earning_milli: i64,
    message_number: u64,
    transmissions: u64,
    dropped_expired: u64,
    dropped_unlikely: u64,
}

fn golden_run(strategy: StrategyKind) -> SimulationReport {
    Simulation::builder()
        .layered_mesh(LayeredMeshConfig::small())
        .ssd(20.0)
        .duration(Duration::from_secs(300))
        .strategy(strategy)
        .seed(42)
        .report()
}

fn observed(report: &SimulationReport) -> Golden {
    Golden {
        published: report.published,
        interested: report.interested,
        on_time: report.on_time,
        late: report.late,
        earning_milli: (report.total_earning * 1000.0).round() as i64,
        message_number: report.message_number,
        transmissions: report.transmissions,
        dropped_expired: report.dropped_expired,
        dropped_unlikely: report.dropped_unlikely,
    }
}

/// The frozen seed-42 behaviour of every paper strategy (static scenario).
fn golden_table() -> Vec<(StrategyKind, Golden)> {
    vec![
        (
            StrategyKind::MaxEb,
            Golden {
                published: 213,
                interested: 347,
                on_time: 307,
                late: 24,
                earning_milli: 598000,
                message_number: 559,
                transmissions: 346,
                dropped_expired: 13,
                dropped_unlikely: 3,
            },
        ),
        (
            StrategyKind::MaxPc,
            Golden {
                published: 224,
                interested: 371,
                on_time: 316,
                late: 32,
                earning_milli: 607000,
                message_number: 599,
                transmissions: 375,
                dropped_expired: 19,
                dropped_unlikely: 3,
            },
        ),
        (
            StrategyKind::MaxEbpc,
            Golden {
                published: 205,
                interested: 302,
                on_time: 277,
                late: 8,
                earning_milli: 548000,
                message_number: 526,
                transmissions: 321,
                dropped_expired: 13,
                dropped_unlikely: 4,
            },
        ),
        (
            StrategyKind::Fifo,
            Golden {
                published: 216,
                interested: 328,
                on_time: 275,
                late: 31,
                earning_milli: 525000,
                message_number: 541,
                transmissions: 325,
                dropped_expired: 19,
                dropped_unlikely: 0,
            },
        ),
        (
            StrategyKind::RemainingLifetime,
            Golden {
                published: 219,
                interested: 347,
                on_time: 309,
                late: 35,
                earning_milli: 598000,
                message_number: 565,
                transmissions: 346,
                dropped_expired: 3,
                dropped_unlikely: 0,
            },
        ),
    ]
}

#[test]
fn seed_42_metrics_match_the_golden_table_for_all_five_strategies() {
    for (strategy, expected) in golden_table() {
        let report = golden_run(strategy);
        assert_eq!(report.dynamics, "static");
        assert_eq!(
            observed(&report),
            expected,
            "seed behaviour of {} drifted — if intentional, regenerate the golden table",
            strategy.label()
        );
    }
}

#[test]
fn golden_config_differentiates_the_strategies() {
    // Guard against the golden setup degenerating into an uncongested run
    // where every strategy behaves identically (which would make the table
    // above meaningless as a strategy-level regression net).
    let table = golden_table();
    let distinct: std::collections::HashSet<i64> =
        table.iter().map(|(_, g)| g.earning_milli).collect();
    assert!(
        distinct.len() >= 3,
        "goldens should separate strategies, got {distinct:?}"
    );
}

#[test]
fn golden_runs_are_stable_within_a_process() {
    // The same builder invocation twice must reproduce the exact report —
    // the in-process half of the replay guarantee the golden table rests on.
    let a = golden_run(StrategyKind::MaxEb);
    let b = golden_run(StrategyKind::MaxEb);
    assert_eq!(a, b);
}

#[test]
fn seed_42_reports_are_bit_identical_under_both_event_schedulers() {
    // The calendar queue and the binary heap must pop in exactly the same
    // (time, seq) order, so the whole golden table — not just aggregate
    // counters — is reproduced whichever scheduler drives the run.
    use bdps::sim::sched::EventQueueKind;
    for (strategy, expected) in golden_table() {
        for queue in EventQueueKind::ALL {
            let report = Simulation::builder()
                .layered_mesh(LayeredMeshConfig::small())
                .ssd(20.0)
                .duration(Duration::from_secs(300))
                .strategy(strategy)
                .seed(42)
                .event_queue(queue)
                .report();
            assert_eq!(
                observed(&report),
                expected,
                "{} under the {} scheduler drifted from the golden table",
                strategy.label(),
                queue.name()
            );
        }
    }
}
