//! Golden-report regression tests.
//!
//! These pin the *exact* metrics of fixed-seed runs across all five paper
//! strategies, so any refactor that silently changes seed behaviour —
//! event ordering, RNG stream discipline, matching semantics — shows up as
//! a loud diff instead of a quiet drift. The numbers were produced by the
//! simulator itself; when a change is *intended* to alter seed behaviour,
//! rerun the configuration below and update the table in the same commit.
//!
//! The configuration is a congested small mesh (publishing rate 20/min on
//! the small layered mesh) so the five strategies genuinely differentiate;
//! on an idle network they all pick the same messages and the golden values
//! would not distinguish them.

use bdps::core::config::StrategyKind;
use bdps::overlay::topology::LayeredMeshConfig;
use bdps::prelude::*;

#[derive(Debug, PartialEq, Eq)]
struct Golden {
    published: u64,
    interested: u64,
    on_time: u64,
    late: u64,
    /// Total earning in thousandths of a price unit (exact integer compare).
    earning_milli: i64,
    message_number: u64,
    transmissions: u64,
    dropped_expired: u64,
    dropped_unlikely: u64,
}

fn golden_run(strategy: StrategyKind) -> SimulationReport {
    Simulation::builder()
        .layered_mesh(LayeredMeshConfig::small())
        .ssd(20.0)
        .duration(Duration::from_secs(300))
        .strategy(strategy)
        .seed(42)
        .report()
}

fn observed(report: &SimulationReport) -> Golden {
    Golden {
        published: report.published,
        interested: report.interested,
        on_time: report.on_time,
        late: report.late,
        earning_milli: (report.total_earning * 1000.0).round() as i64,
        message_number: report.message_number,
        transmissions: report.transmissions,
        dropped_expired: report.dropped_expired,
        dropped_unlikely: report.dropped_unlikely,
    }
}

/// The frozen seed-42 behaviour of every paper strategy (static scenario).
///
/// `published`/`interested` are identical across strategies: publication
/// schedules draw from per-publisher RNG streams (not the global stream),
/// so the offered load is a property of the workload alone and only the
/// scheduling outcomes differ.
fn golden_table() -> Vec<(StrategyKind, Golden)> {
    vec![
        (
            StrategyKind::MaxEb,
            Golden {
                published: 204,
                interested: 428,
                on_time: 379,
                late: 22,
                earning_milli: 741000,
                message_number: 599,
                transmissions: 395,
                dropped_expired: 21,
                dropped_unlikely: 3,
            },
        ),
        (
            StrategyKind::MaxPc,
            Golden {
                published: 204,
                interested: 428,
                on_time: 371,
                late: 34,
                earning_milli: 719000,
                message_number: 603,
                transmissions: 399,
                dropped_expired: 19,
                dropped_unlikely: 3,
            },
        ),
        (
            StrategyKind::MaxEbpc,
            Golden {
                published: 204,
                interested: 428,
                on_time: 379,
                late: 23,
                earning_milli: 741000,
                message_number: 600,
                transmissions: 396,
                dropped_expired: 20,
                dropped_unlikely: 3,
            },
        ),
        (
            StrategyKind::Fifo,
            Golden {
                published: 204,
                interested: 428,
                on_time: 348,
                late: 58,
                earning_milli: 654000,
                message_number: 605,
                transmissions: 401,
                dropped_expired: 21,
                dropped_unlikely: 0,
            },
        ),
        (
            StrategyKind::RemainingLifetime,
            Golden {
                published: 204,
                interested: 428,
                on_time: 334,
                late: 71,
                earning_milli: 621000,
                message_number: 611,
                transmissions: 407,
                dropped_expired: 17,
                dropped_unlikely: 0,
            },
        ),
    ]
}

#[test]
fn seed_42_metrics_match_the_golden_table_for_all_five_strategies() {
    for (strategy, expected) in golden_table() {
        let report = golden_run(strategy);
        assert_eq!(report.dynamics, "static");
        assert_eq!(
            observed(&report),
            expected,
            "seed behaviour of {} drifted — if intentional, regenerate the golden table",
            strategy.label()
        );
    }
}

#[test]
fn golden_config_differentiates_the_strategies() {
    // Guard against the golden setup degenerating into an uncongested run
    // where every strategy behaves identically (which would make the table
    // above meaningless as a strategy-level regression net).
    let table = golden_table();
    let distinct: std::collections::HashSet<i64> =
        table.iter().map(|(_, g)| g.earning_milli).collect();
    assert!(
        distinct.len() >= 3,
        "goldens should separate strategies, got {distinct:?}"
    );
}

#[test]
fn golden_runs_are_stable_within_a_process() {
    // The same builder invocation twice must reproduce the exact report —
    // the in-process half of the replay guarantee the golden table rests on.
    let a = golden_run(StrategyKind::MaxEb);
    let b = golden_run(StrategyKind::MaxEb);
    assert_eq!(a, b);
}

/// Frozen seed-42 behaviour of the `link-flap` dynamic scenario, pinned for
/// a link-model strategy and a baseline. Like the static table above, these
/// numbers came from the simulator itself; regenerate them in the same
/// commit as any intended seed-behaviour change.
#[derive(Debug, PartialEq, Eq)]
struct LinkFlapGolden {
    golden: Golden,
    requeued: u64,
}

fn link_flap_golden_table() -> Vec<(StrategyKind, LinkFlapGolden)> {
    vec![
        (
            StrategyKind::MaxEb,
            LinkFlapGolden {
                golden: Golden {
                    published: 204,
                    interested: 428,
                    on_time: 374,
                    late: 29,
                    earning_milli: 723000,
                    message_number: 598,
                    transmissions: 395,
                    dropped_expired: 19,
                    dropped_unlikely: 5,
                },
                requeued: 1,
            },
        ),
        (
            StrategyKind::Fifo,
            LinkFlapGolden {
                golden: Golden {
                    published: 204,
                    interested: 428,
                    on_time: 369,
                    late: 38,
                    earning_milli: 710000,
                    message_number: 606,
                    transmissions: 403,
                    dropped_expired: 20,
                    dropped_unlikely: 0,
                },
                requeued: 1,
            },
        ),
    ]
}

#[test]
fn seed_42_link_flap_metrics_are_pinned_under_both_rebuild_policies_schedulers_and_layouts() {
    // A link-failure scenario drives the routing/table rebuild machinery;
    // the pinned metrics must be reproduced by every rebuild policy × event
    // scheduler × table layout combination — the full rebuild is the oracle
    // the incremental path must match bit-for-bit, neither scheduler may
    // reorder the same-instant link batches it coalesces over, and the
    // sparse covering-aggregated tables must resolve every arrival exactly
    // like the dense replicated oracle.
    use bdps::sim::sched::EventQueueKind;
    use bdps::sim::{RebuildPolicy, TableLayout};
    for (strategy, expected) in link_flap_golden_table() {
        for policy in RebuildPolicy::ALL {
            for queue in EventQueueKind::ALL {
                for layout in TableLayout::ALL {
                    let report = Simulation::builder()
                        .layered_mesh(LayeredMeshConfig::small())
                        .ssd(20.0)
                        .duration(Duration::from_secs(300))
                        .strategy(strategy)
                        .scenario_named("link-flap")
                        .expect("link-flap is a builtin scenario")
                        .rebuild_policy(policy)
                        .event_queue(queue)
                        .table_layout(layout)
                        .seed(42)
                        .report();
                    assert_eq!(report.dynamics, "link-flap");
                    let observed = LinkFlapGolden {
                        golden: observed(&report),
                        requeued: report.requeued,
                    };
                    assert_eq!(
                        observed,
                        expected,
                        "{} under {} rebuild / {} scheduler / {} layout drifted from the \
                         link-flap goldens",
                        strategy.label(),
                        policy.name(),
                        queue.name(),
                        layout.name()
                    );
                }
            }
        }
    }
}

/// Frozen seed-42 behaviour of the `chaos` scenario (churn + bursts + link
/// failures — every dynamic table-maintenance path at once), pinned for a
/// link-model strategy and a baseline. Like the tables above, these numbers
/// came from the simulator itself; regenerate them in the same commit as any
/// intended seed-behaviour change.
#[derive(Debug, PartialEq, Eq)]
struct ChaosGolden {
    golden: Golden,
    dropped_unsubscribed: u64,
    requeued: u64,
}

fn chaos_golden_table() -> Vec<(StrategyKind, ChaosGolden)> {
    vec![
        (
            StrategyKind::MaxEb,
            ChaosGolden {
                golden: Golden {
                    published: 204,
                    interested: 443,
                    on_time: 371,
                    late: 35,
                    earning_milli: 731000,
                    message_number: 601,
                    transmissions: 398,
                    dropped_expired: 21,
                    dropped_unlikely: 7,
                },
                dropped_unsubscribed: 1,
                requeued: 1,
            },
        ),
        (
            StrategyKind::Fifo,
            ChaosGolden {
                golden: Golden {
                    published: 204,
                    interested: 443,
                    on_time: 338,
                    late: 59,
                    earning_milli: 651000,
                    message_number: 603,
                    transmissions: 400,
                    dropped_expired: 31,
                    dropped_unlikely: 0,
                },
                dropped_unsubscribed: 0,
                requeued: 1,
            },
        ),
    ]
}

#[test]
fn seed_42_chaos_metrics_are_pinned_under_both_table_layouts() {
    // Chaos drives churn (shared-registry inserts/removals, queue
    // stripping) interleaved with link rebuilds (aggregate patching) — the
    // exact paths the sparse layout rewrites. Both layouts must reproduce
    // the pinned metrics bit-for-bit.
    use bdps::sim::TableLayout;
    for (strategy, expected) in chaos_golden_table() {
        for layout in TableLayout::ALL {
            let report = Simulation::builder()
                .layered_mesh(LayeredMeshConfig::small())
                .ssd(20.0)
                .duration(Duration::from_secs(300))
                .strategy(strategy)
                .scenario_named("chaos")
                .expect("chaos is a builtin scenario")
                .table_layout(layout)
                .seed(42)
                .report();
            assert_eq!(report.dynamics, "chaos");
            let observed = ChaosGolden {
                golden: observed(&report),
                dropped_unsubscribed: report.dropped_unsubscribed,
                requeued: report.requeued,
            };
            assert_eq!(
                observed,
                expected,
                "{} under the {} layout drifted from the chaos goldens",
                strategy.label(),
                layout.name()
            );
        }
    }
}

#[test]
fn seed_42_reports_are_bit_identical_under_both_event_schedulers() {
    // The calendar queue and the binary heap must pop in exactly the same
    // (time, seq) order, so the whole golden table — not just aggregate
    // counters — is reproduced whichever scheduler drives the run.
    use bdps::sim::sched::EventQueueKind;
    for (strategy, expected) in golden_table() {
        for queue in EventQueueKind::ALL {
            let report = Simulation::builder()
                .layered_mesh(LayeredMeshConfig::small())
                .ssd(20.0)
                .duration(Duration::from_secs(300))
                .strategy(strategy)
                .seed(42)
                .event_queue(queue)
                .report();
            assert_eq!(
                observed(&report),
                expected,
                "{} under the {} scheduler drifted from the golden table",
                strategy.label(),
                queue.name()
            );
        }
    }
}
