//! Congested-cell golden: the FIFO-degradation fix, regression-locked.
//!
//! The 992-subscriber churn cell of the scale bench is the configuration
//! where aggregate forwarding used to collapse: before aggregate entries
//! carried QoS envelopes, every interior copy was stamped `Price::ZERO`
//! and `Duration::MAX`, so under saturation every strategy degenerated to
//! FIFO over interior copies and expiry-based shedding never fired —
//! seed-42 delivered 48,942 messages on time in exact mode but only
//! 3,913 in aggregate mode. With envelope stamping (price = earning sum,
//! allowed delay = min member bound) the same cell recovers to 19,226
//! on-time while exact mode is bit-identical to the pre-envelope run.
//!
//! This test pins those counts exactly, replicating `run_cell` from
//! `crates/bench/src/bin/scale.rs` (mesh_for(992) → layers [4,4,15,31],
//! 32 subscribers per edge, ssd 30/min, 300 s, EB strategy, calendar
//! queue, incremental rebuilds, sparse tables, constant links, seed 42).
//! Any change that silently alters congested aggregate behaviour —
//! envelope folds, stamping, strategy scoring over stamped copies,
//! shedding — shows up as a loud diff instead of a quiet drift. When a
//! change is *intended* to shift these numbers, rerun the bench cell
//! (`cargo run --release -p bdps-bench --bin scale -- --populations 992
//! --scenarios churn --queues calendar --passes 1 --table-layout sparse
//! --forwarding exact,aggregate --seed 42`) and update the table in the
//! same commit.

use bdps::overlay::sparse::TableLayout;
use bdps::overlay::topology::LayeredMeshConfig;
use bdps::prelude::*;
use bdps::sim::sched::EventQueueKind;

#[derive(Debug, PartialEq, Eq)]
struct Golden {
    published: u64,
    on_time: u64,
    transmissions: u64,
    false_positive_forwards: u64,
}

/// The exact mesh `mesh_for(992)` builds in the scale bench.
fn congested_mesh() -> LayeredMeshConfig {
    let config = LayeredMeshConfig {
        layer_sizes: vec![4, 4, 15, 31],
        fan_in: vec![0, 2, 2],
        publishers_per_first_layer_broker: 1,
        subscribers_per_edge_broker: 32,
    };
    assert_eq!(config.subscriber_count(), 992);
    config
}

fn congested_run(forwarding: ForwardingMode) -> SimulationReport {
    Simulation::builder()
        .layered_mesh(congested_mesh())
        .ssd(30.0)
        .duration(Duration::from_secs(300))
        .strategy(StrategyKind::MaxEb)
        .scenario_named("churn")
        .expect("churn is builtin")
        .event_queue(EventQueueKind::Calendar)
        .rebuild_policy(RebuildPolicy::Incremental)
        .table_layout(TableLayout::Sparse)
        .link_model(LinkModelKind::Constant)
        .forwarding(forwarding)
        .seed(42)
        .report()
}

/// Exact mode must be unaffected by envelope stamping: these are the same
/// counts the cell produced before aggregate entries carried envelopes.
#[test]
fn congested_cell_exact_forwarding_is_pinned() {
    let report = congested_run(ForwardingMode::Exact);
    let observed = Golden {
        published: report.published,
        on_time: report.on_time,
        transmissions: report.transmissions,
        false_positive_forwards: report.false_positive_forwards,
    };
    let expected = Golden {
        published: 601,
        on_time: 48_942,
        transmissions: 7_412,
        false_positive_forwards: 0,
    };
    assert_eq!(observed, expected);
}

/// Aggregate mode with envelope stamping: 19,226 on-time, up from the
/// 3,913 the pre-envelope sentinel stamping (zero price, unbounded delay)
/// delivered on this exact cell.
#[test]
fn congested_cell_aggregate_forwarding_is_pinned() {
    let report = congested_run(ForwardingMode::Aggregate);
    let observed = Golden {
        published: report.published,
        on_time: report.on_time,
        transmissions: report.transmissions,
        false_positive_forwards: report.false_positive_forwards,
    };
    let expected = Golden {
        published: 601,
        on_time: 19_226,
        transmissions: 5_296,
        false_positive_forwards: 26,
    };
    assert_eq!(observed, expected);
}
