//! Helpers shared by the differential-oracle suites
//! (`rebuild_equivalence.rs`, `layout_equivalence.rs`,
//! `forwarding_equivalence.rs`).

use bdps::prelude::*;

/// The delivery set of a finished run: every `(message, subscriber)` pair
/// delivered (on time or late), sorted. This is the oracle currency of the
/// forwarding suite — aggregate forwarding may reshape traffic, but the
/// delivery set must be exactly the exact-mode one — and doubles as a
/// layout-independence check.
#[allow(dead_code)]
pub fn delivered_pairs(outcome: &SimulationOutcome) -> Vec<(u64, u32)> {
    outcome
        .tracker
        .delivered_pairs()
        .into_iter()
        .map(|(m, s)| (m.raw(), s.raw()))
        .collect()
}

/// Directed link count of the small layered mesh the oracle suites run on
/// (the storm generator needs the id range to toggle).
#[allow(dead_code)] // each test binary uses its own subset of the helpers
pub fn small_mesh_link_count() -> u32 {
    let mut rng = SimRng::seed_from(1);
    let topo = bdps::overlay::topology::Topology::layered_mesh(
        &bdps::overlay::topology::LayeredMeshConfig::small(),
        &mut rng,
        bdps::net::link::LinkQuality::paper_random,
    )
    .unwrap();
    topo.graph.link_count() as u32
}

/// Builds the adversarial "flap storm": hundreds of seeded random link
/// events, deliberately including same-instant floods (exercising the
/// engine's rebuild coalescing with mixed down/up batches), nested
/// multi-depth failures (a link downed twice needs two recoveries), flaps
/// fully contained between two events, and unbalanced downs that leave
/// links dead at the horizon. This is the adversarial case the random
/// scenario processes do not reach; both oracle suites run the *same*
/// storm so a generator change can never weaken one of them silently.
#[allow(dead_code)] // each test binary uses its own subset of the helpers
pub fn flap_storm(seed: u64, links: u32, horizon_secs: u64) -> DynamicScenario {
    let mut rng = SimRng::seed_from(seed ^ 0xF1A9_5708);
    let mut scenario = DynamicScenario::named("flap-storm");
    let mut events = 0u32;
    // Same-instant floods: at a handful of instants, toggle many links at
    // once so the engine's coalescing (defer the rebuild to the batch's last
    // link event) is exercised with mixed down/up batches.
    for _ in 0..6 {
        let at = Duration::from_secs(rng.uniform_usize(1, horizon_secs as usize) as u64);
        for _ in 0..rng.uniform_usize(10, 30) {
            let link = LinkId::new(rng.uniform_usize(0, links as usize) as u32);
            let down = rng.chance(0.55);
            scenario = scenario.at(
                at,
                if down {
                    ScenarioAction::LinkDown { link }
                } else {
                    ScenarioAction::LinkUp { link }
                },
            );
            events += 1;
        }
    }
    // Nested failures: the same link downed 2-3 times, recovered one depth
    // at a time at later instants (possibly never fully).
    for _ in 0..10 {
        let link = LinkId::new(rng.uniform_usize(0, links as usize) as u32);
        let depth = rng.uniform_usize(2, 4);
        let at = rng.uniform_usize(1, horizon_secs as usize);
        for _ in 0..depth {
            scenario = scenario.at(
                Duration::from_secs(at as u64),
                ScenarioAction::LinkDown { link },
            );
            events += 1;
        }
        let ups = rng.uniform_usize(0, depth + 1);
        for k in 0..ups {
            let later = at + rng.uniform_usize(1, 40) + k;
            scenario = scenario.at(
                Duration::from_secs(later.min(horizon_secs as usize) as u64),
                ScenarioAction::LinkUp { link },
            );
            events += 1;
        }
    }
    // A background of independent short flaps, some fully contained between
    // two transfer completions.
    for _ in 0..120 {
        let link = LinkId::new(rng.uniform_usize(0, links as usize) as u32);
        let at = rng.uniform_usize(1, horizon_secs as usize);
        let up = at + rng.uniform_usize(1, 20);
        scenario = scenario.at(
            Duration::from_secs(at as u64),
            ScenarioAction::LinkDown { link },
        );
        scenario = scenario.at(
            Duration::from_secs(up.min(horizon_secs as usize) as u64),
            ScenarioAction::LinkUp { link },
        );
        events += 2;
    }
    assert!(events >= 300, "the storm must be a storm, got {events}");
    scenario
}
