//! Property-based tests on cross-crate invariants.

use bdps::prelude::*;
use bdps::core::metrics;
use bdps::core::queue::MatchedTarget;
use bdps::overlay::pathstats::PathStats;
use bdps::overlay::routing::Routing;
use bdps::overlay::topology::Topology;
use bdps::stats::normal::Normal;
use proptest::prelude::*;
use std::sync::Arc;

fn head(a1: f64, a2: f64) -> MessageHead {
    let mut h = MessageHead::new();
    h.set("A1", a1).set("A2", a2);
    h
}

proptest! {
    /// The matching index agrees with brute-force filter evaluation.
    #[test]
    fn index_matches_bruteforce(
        thresholds in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..40),
        probes in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..20),
    ) {
        let mut index = MatchIndex::new();
        for (i, (x1, x2)) in thresholds.iter().enumerate() {
            index.insert(SubscriptionId::new(i as u32), Filter::paper_conjunction(*x1, *x2));
        }
        for (a1, a2) in probes {
            let h = head(a1, a2);
            prop_assert_eq!(index.matching(&h), index.matching_bruteforce(&h));
        }
    }

    /// Filter covering is sound: if `wide` covers `narrow`, every head that
    /// matches `narrow` also matches `wide`.
    #[test]
    fn covering_is_sound(
        wide in (0.0f64..10.0, 0.0f64..10.0),
        narrow in (0.0f64..10.0, 0.0f64..10.0),
        probes in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..30),
    ) {
        let wide_f = Filter::paper_conjunction(wide.0, wide.1);
        let narrow_f = Filter::paper_conjunction(narrow.0, narrow.1);
        if wide_f.covers(&narrow_f) {
            for (a1, a2) in probes {
                let h = head(a1, a2);
                if narrow_f.matches(&h) {
                    prop_assert!(wide_f.matches(&h));
                }
            }
        }
    }

    /// Normal CDF is monotone and bounded; sums of independent normals add
    /// their means and variances.
    #[test]
    fn normal_cdf_properties(mean in -100.0f64..100.0, std in 0.1f64..50.0, a in -200.0f64..200.0, b in -200.0f64..200.0) {
        let n = Normal::new(mean, std);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(n.cdf(lo) <= n.cdf(hi) + 1e-12);
        prop_assert!((0.0..=1.0).contains(&n.cdf(a)));
        let sum = n.add_independent(&Normal::new(mean, std));
        prop_assert!((sum.mean() - 2.0 * mean).abs() < 1e-9);
        prop_assert!((sum.variance() - 2.0 * std * std).abs() < 1e-6);
    }

    /// Success probability is monotone: more elapsed time never increases it,
    /// and a longer allowed delay never decreases it.
    #[test]
    fn success_probability_monotonicity(
        allowed_secs in 1u64..120,
        elapsed_a in 0u64..120,
        elapsed_b in 0u64..120,
        hops in 1u32..4,
        rate in 50.0f64..100.0,
    ) {
        let message = Arc::new(
            Message::builder(MessageId::new(1), PublisherId::new(0))
                .publish_time(SimTime::ZERO)
                .size_kb(50.0)
                .build(),
        );
        let mut stats = PathStats::local();
        for _ in 0..hops {
            stats = stats.extend(Normal::new(rate, 20.0));
        }
        let target = |allowed: u64| MatchedTarget {
            subscription: SubscriptionId::new(0),
            subscriber: SubscriberId::new(0),
            price: Price::unit(),
            allowed_delay: Duration::from_secs(allowed),
            stats,
        };
        let pd = Duration::from_millis(2);
        let (early, late) = if elapsed_a <= elapsed_b { (elapsed_a, elapsed_b) } else { (elapsed_b, elapsed_a) };
        let p_early = metrics::success_probability(&message, &target(allowed_secs), SimTime::from_secs(early), pd);
        let p_late = metrics::success_probability(&message, &target(allowed_secs), SimTime::from_secs(late), pd);
        prop_assert!(p_late <= p_early + 1e-12);
        let p_longer = metrics::success_probability(&message, &target(allowed_secs + 10), SimTime::from_secs(early), pd);
        prop_assert!(p_longer + 1e-12 >= p_early);
        prop_assert!((0.0..=1.0).contains(&p_early));
    }

    /// EB is non-negative, bounded by the total price of its targets, and the
    /// postponing cost never exceeds EB.
    #[test]
    fn eb_and_pc_bounds(
        allowed in proptest::collection::vec(1u64..90, 1..6),
        prices in proptest::collection::vec(1i64..4, 1..6),
        ft in 0.0f64..10_000.0,
    ) {
        let message = Arc::new(
            Message::builder(MessageId::new(1), PublisherId::new(0))
                .publish_time(SimTime::ZERO)
                .size_kb(50.0)
                .build(),
        );
        let targets: Vec<MatchedTarget> = allowed
            .iter()
            .zip(prices.iter().cycle())
            .map(|(&a, &p)| MatchedTarget {
                subscription: SubscriptionId::new(0),
                subscriber: SubscriberId::new(0),
                price: Price::from_units(p),
                allowed_delay: Duration::from_secs(a),
                stats: PathStats::from_links([&Normal::new(75.0, 20.0), &Normal::new(60.0, 20.0)]),
            })
            .collect();
        let pd = Duration::from_millis(2);
        let now = SimTime::from_secs(1);
        let eb = metrics::expected_benefit(&message, &targets, now, pd);
        let pc = metrics::postponing_cost(&message, &targets, now, pd, ft);
        let total_price: f64 = targets.iter().map(|t| t.price.as_f64()).sum();
        prop_assert!(eb >= -1e-12);
        prop_assert!(eb <= total_price + 1e-9);
        prop_assert!(pc >= -1e-9);
        prop_assert!(pc <= eb + 1e-9);
    }

    /// Routing on random meshes is consistent and path statistics equal the
    /// sum of link means along the realised path.
    #[test]
    fn routing_stats_match_paths(seed in 0u64..500, n in 4usize..12) {
        let mut rng = SimRng::seed_from(seed);
        let topo = Topology::random_mesh(n, 3.0, &mut rng, LinkQuality::paper_random);
        let routing = Routing::compute(&topo.graph);
        prop_assert!(routing.is_consistent());
        for from in 0..n {
            for to in 0..n {
                if from == to { continue; }
                let from = BrokerId::new(from as u32);
                let to = BrokerId::new(to as u32);
                if let (Some(stats), Some(path)) = (routing.path_stats(from, to), routing.path(from, to)) {
                    let mut sum = 0.0;
                    for w in path.windows(2) {
                        sum += topo.graph.link_between(w[0], w[1]).unwrap().quality.rate_distribution().mean();
                    }
                    prop_assert!((sum - stats.mean_rate()).abs() < 1e-6);
                    prop_assert_eq!(stats.hops() as usize, path.len() - 1);
                }
            }
        }
    }
}
