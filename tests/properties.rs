//! Property-based tests on cross-crate invariants.
//!
//! The build environment has no crates.io access, so instead of `proptest`
//! these use a small seeded harness: each property is checked over a few
//! hundred pseudo-random cases drawn from [`SimRng`], which keeps the runs
//! deterministic and the failures reproducible (the case index is reported
//! on panic).

use bdps::core::metrics;
use bdps::core::queue::{MatchedTarget, OutputQueue};
use bdps::core::strategy::{ScheduleContext, StrategyRegistry};
use bdps::overlay::pathstats::PathStats;
use bdps::overlay::routing::Routing;
use bdps::overlay::topology::Topology;
use bdps::prelude::*;
use bdps::stats::normal::Normal;
use std::sync::Arc;

/// Runs `property` over `cases` seeded random cases.
fn check(seed: u64, cases: usize, mut property: impl FnMut(&mut SimRng)) {
    for case in 0..cases {
        let mut rng = SimRng::seed_from(seed).split(case as u64);
        property(&mut rng);
    }
}

fn head(a1: f64, a2: f64) -> MessageHead {
    let mut h = MessageHead::new();
    h.set("A1", a1).set("A2", a2);
    h
}

fn random_target(rng: &mut SimRng) -> MatchedTarget {
    let hops = rng.uniform_usize(1, 4);
    let mut stats = PathStats::local();
    for _ in 0..hops {
        stats = stats.extend(Normal::new(rng.uniform_range(50.0, 100.0), 20.0));
    }
    MatchedTarget {
        subscription: SubscriptionId::new(rng.uniform_usize(0, 100) as u32),
        subscriber: SubscriberId::new(rng.uniform_usize(0, 100) as u32),
        price: Price::from_units(rng.uniform_usize(1, 4) as i64),
        allowed_delay: Duration::from_secs(rng.uniform_usize(1, 90) as u64),
        stats,
    }
}

fn random_item(id: u64, rng: &mut SimRng) -> QueuedMessage {
    let targets = (0..rng.uniform_usize(1, 6))
        .map(|_| random_target(rng))
        .collect();
    QueuedMessage {
        message: Arc::new(
            Message::builder(MessageId::new(id), PublisherId::new(0))
                .publish_time(SimTime::from_millis(rng.uniform_usize(0, 5_000) as u64))
                .size_kb(rng.uniform_range(10.0, 100.0))
                .build(),
        ),
        targets,
        enqueue_time: SimTime::from_secs(rng.uniform_usize(5, 10) as u64),
    }
}

fn random_ctx(rng: &mut SimRng) -> ScheduleContext {
    ScheduleContext {
        now: SimTime::from_secs(rng.uniform_usize(10, 40) as u64),
        processing_delay: Duration::from_millis(2),
        ebpc_weight: rng.uniform(),
        avg_message_size_kb: 50.0,
        first_send_estimate_ms: rng.uniform_range(0.0, 10_000.0),
    }
}

/// For every registered strategy: `priority` is deterministic, finite for
/// valid (bounded-deadline) inputs, and `score_all` agrees with per-item
/// scoring.
#[test]
fn every_registered_strategy_is_deterministic_and_finite() {
    let registry = StrategyRegistry::builtin();
    let names = registry.names();
    assert!(!names.is_empty());
    check(0xBD_05, 200, |rng| {
        let items: Vec<QueuedMessage> = (0..rng.uniform_usize(1, 8) as u64)
            .map(|i| random_item(i, rng))
            .collect();
        let ctx = random_ctx(rng);
        for name in &names {
            let strategy = registry.resolve(name).expect("builtin resolves");
            let mut scores = Vec::new();
            strategy.score_all(&ctx, &items, &mut scores);
            assert_eq!(scores.len(), items.len(), "{name}: one score per item");
            for (item, &score) in items.iter().zip(&scores) {
                assert!(score.is_finite(), "{name}: non-finite priority {score}");
                assert_eq!(
                    score,
                    strategy.priority(&ctx, item),
                    "{name}: score_all must match priority"
                );
                assert_eq!(
                    strategy.priority(&ctx, item),
                    strategy.priority(&ctx, item),
                    "{name}: priority must be deterministic"
                );
            }
        }
    });
}

/// Under the FIFO strategy, pop order always matches enqueue order, whatever
/// the message contents.
#[test]
fn fifo_pop_order_matches_enqueue_order() {
    let config =
        SchedulerConfig::paper(StrategyKind::Fifo).with_invalid_detection(InvalidDetection::Off);
    check(0xF1F0, 200, |rng| {
        let mut queue = OutputQueue::new(BrokerId::new(1), LinkId::new(0), 75.0);
        let n = rng.uniform_usize(1, 12) as u64;
        for i in 0..n {
            let mut item = random_item(i, rng);
            // Strictly increasing enqueue times (FIFO breaks exact ties by
            // scan order, which is also arrival order, but keep the property
            // crisp).
            item.enqueue_time = SimTime::from_millis(i * 10);
            queue.push(item);
        }
        for i in 0..n {
            let popped = queue
                .pop_next(SimTime::from_secs(60), &config)
                .expect("queue non-empty");
            assert_eq!(popped.message.id, MessageId::new(i));
        }
        assert!(queue.pop_next(SimTime::from_secs(60), &config).is_none());
    });
}

/// The registry round-trips every built-in name: resolving a name yields a
/// strategy whose display label resolves back to the same strategy.
#[test]
fn registry_round_trips_every_builtin_name() {
    let registry = StrategyRegistry::builtin();
    for name in registry.names() {
        let strategy = registry
            .resolve(name)
            .unwrap_or_else(|| panic!("{name} resolves"));
        let via_label = registry
            .resolve(strategy.label())
            .unwrap_or_else(|| panic!("label {} resolves", strategy.label()));
        assert_eq!(strategy.label(), via_label.label(), "round trip of {name}");
        // Case-insensitive.
        assert!(registry.resolve(&name.to_ascii_uppercase()).is_some());
    }
    // The five paper kinds are all reachable by their labels.
    for kind in StrategyKind::ALL {
        assert_eq!(registry.resolve(kind.label()).unwrap(), kind);
    }
}

/// The matching index agrees with brute-force filter evaluation.
#[test]
fn index_matches_bruteforce() {
    check(0x1DE, 150, |rng| {
        let mut index = MatchIndex::new();
        for i in 0..rng.uniform_usize(1, 40) {
            index.insert(
                SubscriptionId::new(i as u32),
                Filter::paper_conjunction(
                    rng.uniform_range(0.0, 10.0),
                    rng.uniform_range(0.0, 10.0),
                ),
            );
        }
        for _ in 0..rng.uniform_usize(1, 20) {
            let h = head(rng.uniform_range(0.0, 10.0), rng.uniform_range(0.0, 10.0));
            assert_eq!(index.matching(&h), index.matching_bruteforce(&h));
        }
    });
}

/// Filter covering is sound: if `wide` covers `narrow`, every head that
/// matches `narrow` also matches `wide`.
#[test]
fn covering_is_sound() {
    check(0xC0FE, 200, |rng| {
        let wide =
            Filter::paper_conjunction(rng.uniform_range(0.0, 10.0), rng.uniform_range(0.0, 10.0));
        let narrow =
            Filter::paper_conjunction(rng.uniform_range(0.0, 10.0), rng.uniform_range(0.0, 10.0));
        if wide.covers(&narrow) {
            for _ in 0..30 {
                let h = head(rng.uniform_range(0.0, 10.0), rng.uniform_range(0.0, 10.0));
                if narrow.matches(&h) {
                    assert!(wide.matches(&h));
                }
            }
        }
    });
}

/// Normal CDF is monotone and bounded; sums of independent normals add
/// their means and variances.
#[test]
fn normal_cdf_properties() {
    check(0x0CDF, 300, |rng| {
        let mean = rng.uniform_range(-100.0, 100.0);
        let std = rng.uniform_range(0.1, 50.0);
        let n = Normal::new(mean, std);
        let a = rng.uniform_range(-200.0, 200.0);
        let b = rng.uniform_range(-200.0, 200.0);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(n.cdf(lo) <= n.cdf(hi) + 1e-12);
        assert!((0.0..=1.0).contains(&n.cdf(a)));
        let sum = n.add_independent(&Normal::new(mean, std));
        assert!((sum.mean() - 2.0 * mean).abs() < 1e-9);
        assert!((sum.variance() - 2.0 * std * std).abs() < 1e-6);
    });
}

/// Success probability is monotone: more elapsed time never increases it,
/// and a longer allowed delay never decreases it.
#[test]
fn success_probability_monotonicity() {
    check(0x5CC, 300, |rng| {
        let allowed_secs = rng.uniform_usize(1, 120) as u64;
        let elapsed_a = rng.uniform_usize(0, 120) as u64;
        let elapsed_b = rng.uniform_usize(0, 120) as u64;
        let hops = rng.uniform_usize(1, 4);
        let rate = rng.uniform_range(50.0, 100.0);
        let message = Arc::new(
            Message::builder(MessageId::new(1), PublisherId::new(0))
                .publish_time(SimTime::ZERO)
                .size_kb(50.0)
                .build(),
        );
        let mut stats = PathStats::local();
        for _ in 0..hops {
            stats = stats.extend(Normal::new(rate, 20.0));
        }
        let target = |allowed: u64| MatchedTarget {
            subscription: SubscriptionId::new(0),
            subscriber: SubscriberId::new(0),
            price: Price::unit(),
            allowed_delay: Duration::from_secs(allowed),
            stats,
        };
        let pd = Duration::from_millis(2);
        let (early, late) = if elapsed_a <= elapsed_b {
            (elapsed_a, elapsed_b)
        } else {
            (elapsed_b, elapsed_a)
        };
        let p_early = metrics::success_probability(
            &message,
            &target(allowed_secs),
            SimTime::from_secs(early),
            pd,
        );
        let p_late = metrics::success_probability(
            &message,
            &target(allowed_secs),
            SimTime::from_secs(late),
            pd,
        );
        assert!(p_late <= p_early + 1e-12);
        let p_longer = metrics::success_probability(
            &message,
            &target(allowed_secs + 10),
            SimTime::from_secs(early),
            pd,
        );
        assert!(p_longer + 1e-12 >= p_early);
        assert!((0.0..=1.0).contains(&p_early));
    });
}

/// EB is non-negative, bounded by the total price of its targets, and the
/// postponing cost never exceeds EB.
#[test]
fn eb_and_pc_bounds() {
    check(0xEBC, 300, |rng| {
        let message = Arc::new(
            Message::builder(MessageId::new(1), PublisherId::new(0))
                .publish_time(SimTime::ZERO)
                .size_kb(50.0)
                .build(),
        );
        let targets: Vec<MatchedTarget> = (0..rng.uniform_usize(1, 6))
            .map(|_| MatchedTarget {
                subscription: SubscriptionId::new(0),
                subscriber: SubscriberId::new(0),
                price: Price::from_units(rng.uniform_usize(1, 4) as i64),
                allowed_delay: Duration::from_secs(rng.uniform_usize(1, 90) as u64),
                stats: PathStats::from_links([&Normal::new(75.0, 20.0), &Normal::new(60.0, 20.0)]),
            })
            .collect();
        let ft = rng.uniform_range(0.0, 10_000.0);
        let pd = Duration::from_millis(2);
        let now = SimTime::from_secs(1);
        let eb = metrics::expected_benefit(&message, &targets, now, pd);
        let pc = metrics::postponing_cost(&message, &targets, now, pd, ft);
        let total_price: f64 = targets.iter().map(|t| t.price.as_f64()).sum();
        assert!(eb >= -1e-12);
        assert!(eb <= total_price + 1e-9);
        assert!(pc >= -1e-9);
        assert!(pc <= eb + 1e-9);
    });
}

/// Builds a random dynamic scenario (possibly static) from the case RNG.
fn random_scenario(rng: &mut SimRng) -> DynamicScenario {
    let mut s = DynamicScenario::named("property");
    if rng.chance(0.6) {
        s = s.with_churn(ChurnConfig {
            joins_per_min: rng.uniform_range(0.5, 6.0),
            leaves_per_min: rng.uniform_range(0.5, 6.0),
        });
    }
    if rng.chance(0.6) {
        s = s.with_bursts(BurstConfig {
            mean_calm_secs: rng.uniform_range(30.0, 120.0),
            mean_burst_secs: rng.uniform_range(15.0, 60.0),
            multiplier: rng.uniform_range(2.0, 6.0),
        });
    }
    if rng.chance(0.6) {
        s = s.with_link_failures(LinkFailureConfig {
            mean_time_between_failures_secs: rng.uniform_range(15.0, 90.0),
            mean_downtime_secs: rng.uniform_range(5.0, 45.0),
        });
    }
    if rng.chance(0.3) {
        s = s.with_blackout(BlackoutWindow {
            start_frac: rng.uniform_range(0.2, 0.6),
            duration_frac: rng.uniform_range(0.05, 0.3),
        });
    }
    s
}

fn scenario_report(
    scenario: &DynamicScenario,
    strategy: StrategyKind,
    seed: u64,
) -> SimulationReport {
    Simulation::builder()
        .layered_mesh(bdps::overlay::topology::LayeredMeshConfig::small())
        .ssd(10.0)
        .duration(Duration::from_secs(240))
        .strategy(strategy)
        .scenario(scenario.clone())
        .seed(seed)
        .report()
}

fn scenario_outcome(
    scenario: &DynamicScenario,
    strategy: StrategyKind,
    seed: u64,
) -> SimulationOutcome {
    Simulation::builder()
        .layered_mesh(bdps::overlay::topology::LayeredMeshConfig::small())
        .ssd(10.0)
        .duration(Duration::from_secs(240))
        .strategy(strategy)
        .scenario(scenario.clone())
        .seed(seed)
        .build()
        .run()
}

/// Message-copy conservation holds under arbitrary dynamic scenarios: every
/// copy put into a queue is transmitted, dropped or still queued at the
/// horizon, and every transmission completed, was requeued after a link
/// failure, or is still in flight.
#[test]
fn scenario_runs_conserve_message_copies() {
    let strategies = [
        StrategyKind::MaxEb,
        StrategyKind::Fifo,
        StrategyKind::MaxEbpc,
    ];
    check(0xC0 + 0x45E, 6, |rng| {
        let scenario = random_scenario(rng);
        let strategy = strategies[rng.uniform_usize(0, strategies.len())];
        let seed = rng.next_u64() % 10_000;
        let out = scenario_outcome(&scenario, strategy, seed);
        out.check_conservation().unwrap_or_else(|violation| {
            panic!("{violation} (scenario {scenario:?}, {strategy:?}, seed {seed})")
        });
        // Received copies balance too: everything that completed a transfer
        // or was published either went through a processing module or is
        // still inside one at the horizon.
        assert_eq!(
            out.message_number() + out.pending_process_at_end,
            out.published + out.completed_transfers,
            "processing balance violated (scenario {scenario:?}, seed {seed})"
        );
    });
}

/// No (message, subscriber) pair is ever delivered twice, even with churn
/// re-using freed capacity and link failures requeueing copies.
#[test]
fn scenario_runs_never_duplicate_deliveries() {
    check(0xD0 + 0x0D1, 6, |rng| {
        let scenario = random_scenario(rng);
        let seed = rng.next_u64() % 10_000;
        let out = scenario_outcome(&scenario, StrategyKind::MaxEb, seed);
        assert_eq!(out.tracker.duplicate_deliveries(), 0);
        let delivered = out.tracker.total_on_time() + out.tracker.total_late();
        assert!(
            delivered <= out.tracker.total_interested(),
            "delivered {delivered} > interested {} (scenario {scenario:?}, seed {seed})",
            out.tracker.total_interested()
        );
    });
}

/// Same seed ⇒ identical report, with dynamic scenarios enabled.
#[test]
fn scenario_runs_replay_identically_for_the_same_seed() {
    check(0x5E_ED, 4, |rng| {
        let scenario = random_scenario(rng);
        let seed = rng.next_u64() % 10_000;
        let a = scenario_report(&scenario, StrategyKind::MaxEbpc, seed);
        let b = scenario_report(&scenario, StrategyKind::MaxEbpc, seed);
        assert_eq!(a, b, "replay drifted (scenario {scenario:?}, seed {seed})");
    });
}

/// Per-phase breakdowns partition the run: phase-level counts add up to the
/// run totals and no phase statistic is NaN, even for empty phases.
#[test]
fn scenario_phase_breakdowns_partition_the_run() {
    check(0x9A5E, 4, |rng| {
        let scenario = random_scenario(rng);
        let seed = rng.next_u64() % 10_000;
        let report = scenario_report(&scenario, StrategyKind::MaxEb, seed);
        let published: u64 = report.phases.iter().map(|p| p.published).sum();
        let on_time: u64 = report.phases.iter().map(|p| p.on_time).sum();
        let late: u64 = report.phases.iter().map(|p| p.late).sum();
        assert_eq!(published, report.published);
        assert_eq!(on_time, report.on_time);
        assert_eq!(late, report.late);
        for p in &report.phases {
            assert!(p.mean_valid_delay_ms.is_finite(), "{p:?}");
            assert!(p.p95_valid_delay_ms.is_finite(), "{p:?}");
            assert!(p.start_s <= p.end_s, "{p:?}");
        }
    });
}

/// After any sequence of link-liveness delta batches, incrementally updated
/// routing is **bit-identical** to a from-scratch
/// [`Routing::compute_filtered`] over the surviving links, and the reported
/// delta names exactly the `(source, destination)` pairs whose entry
/// changed — the table-level oracle behind `RebuildPolicy::Incremental`.
#[test]
fn incremental_routing_equals_scratch_recompute_after_any_delta_sequence() {
    check(0xD317A, 40, |rng| {
        let n = rng.uniform_usize(4, 12);
        let mut topo_rng = SimRng::seed_from(rng.next_u64());
        let topo = Topology::random_mesh(n, 3.0, &mut topo_rng, LinkQuality::paper_random);
        let links = topo.graph.link_count();
        let mut alive = vec![true; links];
        let mut routing = Routing::compute(&topo.graph);
        for _ in 0..rng.uniform_usize(1, 6) {
            // One batch: toggle a few links (dedup — a link toggles once per
            // batch, matching the engine's coalesced net-change semantics).
            let mut removed = Vec::new();
            let mut added = Vec::new();
            let mut touched = std::collections::HashSet::new();
            for _ in 0..rng.uniform_usize(1, 5) {
                let link = rng.uniform_usize(0, links);
                if !touched.insert(link) {
                    continue;
                }
                alive[link] = !alive[link];
                if alive[link] {
                    added.push(LinkId::new(link as u32));
                } else {
                    removed.push(LinkId::new(link as u32));
                }
            }
            let before = routing.clone();
            let delta =
                routing.update_for_link_change(&topo.graph, |l| alive[l.index()], &removed, &added);
            let scratch = Routing::compute_filtered(&topo.graph, |l| alive[l.index()]);
            assert_eq!(
                routing, scratch,
                "incremental routing drifted from the from-scratch oracle"
            );
            // The delta is exact: it reports a pair iff the entry changed.
            let mut expected = 0usize;
            for src in 0..n {
                for dest in 0..n {
                    let (s, d) = (BrokerId::new(src as u32), BrokerId::new(dest as u32));
                    let changed = before.route(s, d) != scratch.route(s, d);
                    assert_eq!(
                        delta.changed_dests(s).contains(&d),
                        changed,
                        "delta mismatch for ({s}, {d})"
                    );
                    expected += changed as usize;
                }
            }
            assert_eq!(delta.changed_pairs(), expected);
        }
    });
}

/// A subscription table patched through `apply_route_delta` equals a
/// from-scratch `SubscriptionTable::build` over the new routing: same
/// membership, and every entry's next hop, link and path statistics agree
/// with the fresh routing.
#[test]
fn patched_tables_agree_with_fresh_routing() {
    check(0x7AB1E, 25, |rng| {
        let n = rng.uniform_usize(5, 10);
        let mut topo_rng = SimRng::seed_from(rng.next_u64());
        let topo = Topology::random_mesh(n, 3.0, &mut topo_rng, LinkQuality::paper_random);
        let links = topo.graph.link_count();
        // A population of subscriptions attached to random brokers.
        let subs: Vec<(Subscription, BrokerId)> = (0..rng.uniform_usize(5, 25) as u32)
            .map(|i| {
                (
                    Subscription::best_effort(
                        SubscriptionId::new(i),
                        SubscriberId::new(i),
                        Filter::paper_conjunction(
                            rng.uniform_range(0.0, 10.0),
                            rng.uniform_range(0.0, 10.0),
                        ),
                    ),
                    BrokerId::new(rng.uniform_usize(0, n) as u32),
                )
            })
            .collect();
        let mut alive = vec![true; links];
        let mut routing = Routing::compute(&topo.graph);
        let mut tables: Vec<SubscriptionTable> = (0..n)
            .map(|b| SubscriptionTable::build(BrokerId::new(b as u32), &routing, &subs))
            .collect();

        for _ in 0..rng.uniform_usize(1, 4) {
            let mut removed = Vec::new();
            let mut added = Vec::new();
            let mut touched = std::collections::HashSet::new();
            for _ in 0..rng.uniform_usize(1, 4) {
                let link = rng.uniform_usize(0, links);
                if !touched.insert(link) {
                    continue;
                }
                alive[link] = !alive[link];
                if alive[link] {
                    added.push(LinkId::new(link as u32));
                } else {
                    removed.push(LinkId::new(link as u32));
                }
            }
            let delta =
                routing.update_for_link_change(&topo.graph, |l| alive[l.index()], &removed, &added);
            for (b, table) in tables.iter_mut().enumerate() {
                let source = BrokerId::new(b as u32);
                for &dest in delta.changed_dests(source) {
                    let attached: Vec<Subscription> = subs
                        .iter()
                        .filter(|(_, edge)| *edge == dest)
                        .map(|(s, _)| s.clone())
                        .collect();
                    table.retarget_entries(&routing, dest, &attached);
                }
                // Oracle: the patched table equals a fresh build.
                let fresh = SubscriptionTable::build(source, &routing, &subs);
                assert_eq!(table.len(), fresh.len(), "membership drifted at {source}");
                for entry in fresh.entries() {
                    let patched = table
                        .entry(entry.subscription.id)
                        .unwrap_or_else(|| panic!("missing entry at {source}"));
                    assert_eq!(patched.next_hop, entry.next_hop, "next hop at {source}");
                    assert_eq!(patched.next_link, entry.next_link, "next link at {source}");
                    assert_eq!(patched.stats, entry.stats, "stats at {source}");
                    assert_eq!(patched.edge_broker, entry.edge_broker);
                    // Every patched next hop agrees with the fresh routing.
                    match routing.route(source, entry.edge_broker) {
                        Some(route) => {
                            assert_eq!(patched.next_hop, Some(route.next_hop));
                            assert_eq!(patched.stats, route.stats);
                        }
                        None => assert!(
                            patched.is_local(),
                            "unreachable non-local entry survived at {source}"
                        ),
                    }
                }
            }
        }
    });
}

/// The table-level oracle of the sparse covering-aggregated layout: for
/// random topologies, subscription populations and interleaved churn +
/// link-delta sequences, (a) a sparse table maintained *incrementally*
/// (registry churn + `sync_aggregate` on exactly the changed destinations)
/// equals a from-scratch sparse build, and (b) the sparse table expanded at
/// edges resolves exactly the dense table's delivery set — same rows, same
/// routed fields, for scoped and unscoped arrivals alike.
#[test]
fn sparse_tables_match_dense_and_incremental_matches_scratch() {
    use bdps::overlay::sparse::{ResolvedEntry, SharedPopulation, SparseTable};
    use bdps::overlay::subtable::SubscriptionTable;
    use std::sync::{Arc, RwLock};

    check(0x5AA5_E011, 20, |rng| {
        let n = rng.uniform_usize(4, 9);
        let mut topo_rng = SimRng::seed_from(rng.next_u64());
        let topo = Topology::random_mesh(n, 3.0, &mut topo_rng, LinkQuality::paper_random);
        let links = topo.graph.link_count();
        let mut alive = vec![true; links];
        let mut routing = Routing::compute(&topo.graph);

        // Initial population on random edges.
        let mut subs: Vec<(Subscription, BrokerId)> = Vec::new();
        let mut next_id = 0u32;
        let make_sub = |rng: &mut SimRng, next_id: &mut u32| {
            let id = *next_id;
            *next_id += 1;
            (
                Subscription::best_effort(
                    SubscriptionId::new(id),
                    SubscriberId::new(id),
                    Filter::paper_conjunction(
                        rng.uniform_range(0.0, 10.0),
                        rng.uniform_range(0.0, 10.0),
                    ),
                ),
                BrokerId::new(rng.uniform_usize(0, n) as u32),
            )
        };
        for _ in 0..rng.uniform_usize(3, 15) {
            subs.push(make_sub(rng, &mut next_id));
        }

        let population = Arc::new(RwLock::new(SharedPopulation::from_population(&subs)));
        let mut sparse: Vec<SparseTable> = (0..n)
            .map(|b| SparseTable::build(BrokerId::new(b as u32), &routing, &population))
            .collect();

        for _ in 0..rng.uniform_usize(2, 6) {
            // One step: either a churn event or a link batch.
            if rng.chance(0.5) || links == 0 {
                if !subs.is_empty() && rng.chance(0.4) {
                    // Leave: registry once, local strip at the edge, one
                    // aggregate sync per broker.
                    let victim = rng.uniform_usize(0, subs.len());
                    let (sub, edge) = subs.remove(victim);
                    population.write().unwrap().remove(sub.id);
                    for table in sparse.iter_mut() {
                        table.remove_local(sub.id);
                        table.sync_aggregate(&routing, edge);
                    }
                } else {
                    // Join: registry once, full entry only at the edge.
                    let (sub, edge) = make_sub(rng, &mut next_id);
                    population.write().unwrap().insert(sub.clone(), edge);
                    for table in sparse.iter_mut() {
                        if table.broker() == edge {
                            table.insert_local(sub.clone());
                        } else {
                            table.sync_aggregate(&routing, edge);
                        }
                    }
                    subs.push((sub, edge));
                }
            } else {
                // A link batch: toggle a few links, patch exactly the
                // changed (broker, destination) aggregates.
                let mut removed = Vec::new();
                let mut added = Vec::new();
                let mut touched = std::collections::HashSet::new();
                for _ in 0..rng.uniform_usize(1, 4) {
                    let link = rng.uniform_usize(0, links);
                    if !touched.insert(link) {
                        continue;
                    }
                    alive[link] = !alive[link];
                    if alive[link] {
                        added.push(LinkId::new(link as u32));
                    } else {
                        removed.push(LinkId::new(link as u32));
                    }
                }
                let delta = routing.update_for_link_change(
                    &topo.graph,
                    |l| alive[l.index()],
                    &removed,
                    &added,
                );
                for table in sparse.iter_mut() {
                    for &dest in delta.changed_dests(table.broker()) {
                        table.sync_aggregate(&routing, dest);
                    }
                }
            }

            // Oracle (a): incremental maintenance equals a from-scratch
            // sparse build — locals, aggregates and routed fields alike.
            for table in &sparse {
                let scratch = SparseTable::build(table.broker(), &routing, &population);
                assert_eq!(
                    table.aggregates().collect::<Vec<_>>(),
                    scratch.aggregates().collect::<Vec<_>>(),
                    "incremental aggregates drifted at {}",
                    table.broker()
                );
                assert_eq!(
                    table.local().len(),
                    scratch.local().len(),
                    "local membership drifted at {}",
                    table.broker()
                );
            }

            // Oracle (b): the sparse table resolves exactly the dense
            // table's delivery set.
            let all_ids: Vec<SubscriptionId> = subs.iter().map(|(s, _)| s.id).collect();
            let scope = ScopeSet::from_unsorted(all_ids);
            for table in &sparse {
                let dense = SubscriptionTable::build(table.broker(), &routing, &subs);
                let mut resolved: Vec<ResolvedEntry> = Vec::new();
                table.resolve_scope(&scope, |e| resolved.push(e));
                let expected: Vec<ResolvedEntry> = scope
                    .iter()
                    .filter_map(|id| dense.entry(id).map(ResolvedEntry::from_entry))
                    .collect();
                assert_eq!(
                    resolved,
                    expected,
                    "scoped resolution drifted at {}",
                    table.broker()
                );
                // Unscoped matching (the covering-gated path) delivers the
                // same rows in the same ascending order.
                let h = head(rng.uniform_range(0.0, 10.0), rng.uniform_range(0.0, 10.0));
                let via_sparse = table.matching_all(&h);
                let mut via_dense: Vec<ResolvedEntry> = dense
                    .matching(&h)
                    .into_iter()
                    .map(ResolvedEntry::from_entry)
                    .collect();
                via_dense.sort_unstable_by_key(|e| e.subscription);
                assert_eq!(
                    via_sparse,
                    via_dense,
                    "unscoped matching drifted at {}",
                    table.broker()
                );
            }
        }
    });
}

/// Routing on random meshes is consistent and path statistics equal the
/// sum of link means along the realised path.
#[test]
fn routing_stats_match_paths() {
    check(0x0707, 60, |rng| {
        let n = rng.uniform_usize(4, 12);
        let mut topo_rng = SimRng::seed_from(rng.next_u64());
        let topo = Topology::random_mesh(n, 3.0, &mut topo_rng, LinkQuality::paper_random);
        let routing = Routing::compute(&topo.graph);
        assert!(routing.is_consistent());
        for from in 0..n {
            for to in 0..n {
                if from == to {
                    continue;
                }
                let from = BrokerId::new(from as u32);
                let to = BrokerId::new(to as u32);
                if let (Some(stats), Some(path)) =
                    (routing.path_stats(from, to), routing.path(from, to))
                {
                    let mut sum = 0.0;
                    for w in path.windows(2) {
                        sum += topo
                            .graph
                            .link_between(w[0], w[1])
                            .unwrap()
                            .quality
                            .rate_distribution()
                            .mean();
                    }
                    assert!((sum - stats.mean_rate()).abs() < 1e-6);
                    assert_eq!(stats.hops() as usize, path.len() - 1);
                }
            }
        }
    });
}
