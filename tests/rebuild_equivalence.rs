//! Differential-oracle suite for the incremental routing/table rebuild.
//!
//! The engine rebuilds routing and subscription tables after link events
//! under one of two [`RebuildPolicy`]s: `Full` (recompute everything from
//! the whole population — the original implementation, kept as the
//! reference) and `Incremental` (recompute only the affected destination
//! trees and patch only the entries whose route entry changed). The two are
//! claimed to be **bit-identical**; this suite holds the incremental path to
//! that claim the same way the scheduler suite holds the calendar queue to
//! the binary heap: run the same seeds through the most adversarial
//! link-dynamics scenarios under both policies and require the *entire*
//! [`SimulationReport`] — per-phase breakdowns included — to be equal.
//!
//! The hand-built "flap storm" scenario is the adversarial case the random
//! processes do not reach: hundreds of link events stacked on the *same
//! instant* (exercising the engine's rebuild coalescing), nested multi-depth
//! failures (a link downed twice needs two recoveries), flaps fully
//! contained between two events, and links left dead at the horizon.

use bdps::prelude::*;
use bdps::sim::sched::EventQueueKind;

mod common;
use common::{flap_storm, small_mesh_link_count};

fn report(
    scenario: &DynamicScenario,
    policy: RebuildPolicy,
    queue: EventQueueKind,
    seed: u64,
) -> SimulationReport {
    Simulation::builder()
        .layered_mesh(bdps::overlay::topology::LayeredMeshConfig::small())
        .ssd(12.0)
        .duration(Duration::from_secs(240))
        .strategy(StrategyKind::MaxEbpc)
        .scenario(scenario.clone())
        .rebuild_policy(policy)
        .event_queue(queue)
        .seed(seed)
        .report()
}

/// Runs one scenario over a seed range and asserts full-vs-incremental
/// report equality (calendar queue — the default scheduler).
fn assert_policies_agree(scenario_name: &str, seeds: std::ops::RangeInclusive<u64>) {
    let registry = ScenarioRegistry::builtin();
    let scenario = registry
        .resolve(scenario_name)
        .unwrap_or_else(|| panic!("{scenario_name} is a builtin scenario"));
    for seed in seeds {
        let full = report(
            &scenario,
            RebuildPolicy::Full,
            EventQueueKind::Calendar,
            seed,
        );
        let incremental = report(
            &scenario,
            RebuildPolicy::Incremental,
            EventQueueKind::Calendar,
            seed,
        );
        assert_eq!(
            full, incremental,
            "incremental rebuild drifted from the full-rebuild oracle \
             ({scenario_name}, seed {seed})"
        );
    }
}

#[test]
fn link_flap_reports_are_policy_independent_on_seeds_1_to_10() {
    assert_policies_agree("link-flap", 1..=10);
}

#[test]
fn blackout_reports_are_policy_independent_on_seeds_1_to_10() {
    assert_policies_agree("blackout", 1..=10);
}

#[test]
fn chaos_reports_are_policy_independent_on_seeds_1_to_10() {
    // Chaos combines churn, bursts and link failures, so the oracle also
    // covers subscription joins/leaves interleaved with rebuilds (a join
    // during an outage must patch in on recovery identically under both
    // policies).
    assert_policies_agree("chaos", 1..=10);
}

#[test]
fn flap_storm_is_policy_and_scheduler_independent() {
    // The small mesh has 68 directed links; the storm spans every policy ×
    // scheduler combination and every report must come out identical.
    let links = small_mesh_link_count();
    for seed in [3u64, 7, 11] {
        let storm = flap_storm(seed, links, 240);
        let reference = report(
            &storm,
            RebuildPolicy::Full,
            EventQueueKind::BinaryHeap,
            seed,
        );
        for policy in RebuildPolicy::ALL {
            for queue in EventQueueKind::ALL {
                let candidate = report(&storm, policy, queue, seed);
                assert_eq!(
                    reference,
                    candidate,
                    "flap storm drifted (seed {seed}, {} policy, {} queue)",
                    policy.name(),
                    queue.name()
                );
            }
        }
        // The storm must actually stress the rebuild machinery: link events
        // void transfers (requeues) in a congested mesh.
        assert!(
            reference.requeued > 0,
            "storm seed {seed} never caught a transfer in flight"
        );
    }
}

#[test]
fn rebuild_policy_round_trips_through_config_and_registry_names() {
    let config = Simulation::builder()
        .rebuild_policy(RebuildPolicy::Full)
        .build_config();
    assert_eq!(config.rebuild_policy, RebuildPolicy::Full);
    let rebuilt = SimulationBuilder::from_config(&config).build_config();
    assert_eq!(rebuilt, config);
    // Default stays incremental.
    assert_eq!(
        Simulation::builder().build_config().rebuild_policy,
        RebuildPolicy::Incremental
    );
    for policy in RebuildPolicy::ALL {
        assert_eq!(RebuildPolicy::from_name(policy.name()), Some(policy));
    }
    assert_eq!(
        RebuildPolicy::from_name("inc"),
        Some(RebuildPolicy::Incremental)
    );
    assert!(RebuildPolicy::from_name("bogus").is_none());
}
