//! Cross-crate integration tests: the full paper pipeline from topology to
//! objective metrics.

use bdps::core::strategy::ScheduleContext;
use bdps::overlay::routing::Routing;
use bdps::overlay::topology::{LayeredMeshConfig, Topology};
use bdps::prelude::*;
use bdps::sim::runner::{run, sweep, SweepCell, TopologySpec};

fn quick(strategy: StrategyKind, ssd: bool, rate: f64, seed: u64) -> SimulationConfig {
    let workload = if ssd {
        WorkloadConfig::paper_ssd(rate)
    } else {
        WorkloadConfig::paper_psd(rate)
    }
    .with_duration(Duration::from_secs(420));
    SimulationConfig::paper(strategy, workload, seed)
}

#[test]
fn paper_topology_routes_are_complete_and_consistent() {
    let topo = Topology::paper_topology(&mut SimRng::seed_from(5));
    let routing = Routing::compute(&topo.graph);
    assert!(routing.is_consistent());
    // Every publisher broker reaches every edge broker through at most 3 hops
    // (layer 1 -> 2 -> 3 -> 4).
    for pb in topo.graph.publisher_brokers() {
        for eb in topo.graph.edge_brokers() {
            let stats = routing.path_stats(pb, eb).expect("reachable");
            assert!(
                stats.hops() >= 1 && stats.hops() <= 3,
                "hops = {}",
                stats.hops()
            );
            assert!(stats.mean_rate() >= 50.0 && stats.mean_rate() <= 300.0);
        }
    }
}

#[test]
fn paper_scale_run_is_sane_under_the_eb_strategy() {
    let report = run(&quick(StrategyKind::MaxEb, true, 10.0, 31));
    // 4 publishers x 10 msg/min x 7 minutes ~ 280 messages.
    assert!(
        report.published > 150 && report.published < 450,
        "published = {}",
        report.published
    );
    // The workload is tuned for ~25% selectivity over 160 subscribers.
    let avg_interested = report.interested as f64 / report.published as f64;
    assert!(
        (20.0..60.0).contains(&avg_interested),
        "average interested subscribers per message = {avg_interested}"
    );
    assert!(report.delivery_rate > 0.0 && report.delivery_rate <= 1.0);
    assert!(report.total_earning > 0.0);
    assert!(report.message_number > report.published as u64);
    // No (message, subscriber) pair can be delivered twice.
    assert!(report.on_time + report.late <= report.interested);
}

#[test]
fn congestion_ordering_matches_the_paper() {
    // At publishing rate 12 the network is congested; the paper's ordering is
    // EB >= PC > FIFO > RL for delivery rate (Fig. 6a) and earning (Fig. 5a).
    let cells: Vec<SweepCell> = [
        StrategyKind::MaxEb,
        StrategyKind::MaxPc,
        StrategyKind::Fifo,
        StrategyKind::RemainingLifetime,
    ]
    .iter()
    .map(|&s| SweepCell {
        label: s.label().into(),
        config: quick(s, false, 12.0, 77),
    })
    .collect();
    let results = sweep(&cells, 4);
    let rate_of = |label: &str| {
        results
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, r)| r.delivery_rate)
            .unwrap()
    };
    let eb = rate_of("EB");
    let fifo = rate_of("FIFO");
    let rl = rate_of("RL");
    assert!(eb < 1.0, "there should be congestion, EB rate = {eb}");
    assert!(eb > fifo, "EB ({eb}) should beat FIFO ({fifo})");
    assert!(fifo > rl, "FIFO ({fifo}) should beat RL ({rl})");
}

#[test]
fn ssd_earning_favours_eb_over_fifo_under_load() {
    let eb = run(&quick(StrategyKind::MaxEb, true, 12.0, 13));
    let fifo = run(&quick(StrategyKind::Fifo, true, 12.0, 13));
    assert!(
        eb.total_earning > fifo.total_earning,
        "EB earning {} should exceed FIFO earning {}",
        eb.total_earning,
        fifo.total_earning
    );
    // Traffic overhead should stay moderate (the paper reports ~+23% at rate 15).
    let overhead = eb.message_number as f64 / fifo.message_number as f64;
    assert!(overhead < 1.8, "EB traffic overhead too high: {overhead}");
}

#[test]
fn ebpc_extreme_weight_equals_eb() {
    // r = 1 makes EBPC identical to EB, so the whole simulation must agree.
    let eb = run(&quick(StrategyKind::MaxEb, true, 9.0, 5));
    let ebpc = run(&quick(StrategyKind::MaxEbpc, true, 9.0, 5).with_ebpc_weight(1.0));
    assert_eq!(eb.on_time, ebpc.on_time);
    assert_eq!(eb.total_earning, ebpc.total_earning);
    assert_eq!(eb.message_number, ebpc.message_number);
}

#[test]
fn runs_are_reproducible_across_processes_and_parallelism() {
    let cfg = quick(StrategyKind::MaxEbpc, false, 9.0, 99);
    let a = run(&cfg);
    let b = run(&cfg);
    assert_eq!(a, b);
    // The same cell inside a parallel sweep gives the same numbers.
    let cells = vec![
        SweepCell {
            label: "x".into(),
            config: cfg.clone(),
        },
        SweepCell {
            label: "y".into(),
            config: quick(StrategyKind::Fifo, false, 9.0, 99),
        },
    ];
    let swept = sweep(&cells, 2);
    assert_eq!(swept[0].1, a);
}

#[test]
fn builder_path_matches_enum_path_for_all_paper_strategies() {
    // Acceptance: the five paper strategies must produce identical sweep
    // results (delivery rate / total earning) through the trait + builder
    // path as through the `StrategyKind` compatibility path.
    for strategy in StrategyKind::ALL {
        for ssd in [false, true] {
            let enum_path = run(&quick(strategy, ssd, 10.0, 21));
            let builder_path = Simulation::builder()
                .workload(if ssd {
                    WorkloadConfig::paper_ssd(10.0)
                } else {
                    WorkloadConfig::paper_psd(10.0)
                })
                .duration(Duration::from_secs(420))
                .strategy(strategy)
                .seed(21)
                .report();
            assert_eq!(enum_path, builder_path, "{} ssd={ssd}", strategy.label());
        }
    }
}

/// A strategy defined entirely outside the core crates: prefers messages
/// worth the most per queued byte.
#[derive(Debug)]
struct ValuePerKb;

impl SchedulingStrategy for ValuePerKb {
    fn name(&self) -> &str {
        "VPK"
    }

    fn priority(&self, _ctx: &ScheduleContext, item: &QueuedMessage) -> f64 {
        let value: f64 = item.targets.iter().map(|t| t.price.as_f64()).sum();
        value / item.message.size_kb.max(1e-9)
    }
}

#[test]
fn user_defined_strategy_runs_through_broker_and_simulation() {
    // Acceptance: a strategy implemented outside `bdps-core` plugs into the
    // full pipeline through a handle, with no changes to the core crates.
    let report = Simulation::builder()
        .topology(TopologySpec::LayeredMesh(LayeredMeshConfig::small()))
        .ssd(8.0)
        .duration(Duration::from_secs(300))
        .strategy(ValuePerKb)
        .seed(11)
        .report();
    assert_eq!(report.strategy, "VPK");
    assert!(report.published > 0);
    assert!(report.on_time > 0, "custom strategy must still deliver");
    assert!(report.delivery_rate > 0.0 && report.delivery_rate <= 1.0);
    // Deterministic like every other strategy.
    let again = Simulation::builder()
        .topology(TopologySpec::LayeredMesh(LayeredMeshConfig::small()))
        .ssd(8.0)
        .duration(Duration::from_secs(300))
        .strategy(ValuePerKb)
        .seed(11)
        .report();
    assert_eq!(report, again);
}

#[test]
fn churn_burst_link_failure_scenario_end_to_end_for_all_five_strategies() {
    // Acceptance: a combined churn + burst + link-failure scenario runs
    // end-to-end through `Simulation::builder().scenario(..)`, replays
    // bit-for-bit for the same seed, and the conservation / no-duplicate
    // invariants hold — for every paper strategy.
    let chaos = || {
        DynamicScenario::named("chaos")
            .with_churn(ChurnConfig {
                joins_per_min: 3.0,
                leaves_per_min: 3.0,
            })
            .with_bursts(BurstConfig {
                mean_calm_secs: 90.0,
                mean_burst_secs: 45.0,
                multiplier: 4.0,
            })
            .with_link_failures(LinkFailureConfig {
                mean_time_between_failures_secs: 45.0,
                mean_downtime_secs: 20.0,
            })
    };
    let build = |strategy: StrategyKind| {
        Simulation::builder()
            .layered_mesh(LayeredMeshConfig::small())
            .ssd(10.0)
            .duration(Duration::from_secs(300))
            .strategy(strategy)
            .scenario(chaos())
            .seed(2006)
    };
    for strategy in StrategyKind::ALL {
        let outcome = build(strategy).build().run();
        outcome
            .check_conservation()
            .unwrap_or_else(|v| panic!("{}: {v}", strategy.label()));
        assert_eq!(
            outcome.tracker.duplicate_deliveries(),
            0,
            "{}",
            strategy.label()
        );
        let delivered = outcome.tracker.total_on_time() + outcome.tracker.total_late();
        assert!(delivered <= outcome.tracker.total_interested());
        assert!(outcome.tracker.total_on_time() > 0, "{}", strategy.label());

        let a = build(strategy).report();
        let b = build(strategy).report();
        assert_eq!(a, b, "{} must replay bit-for-bit", strategy.label());
        assert_eq!(a.dynamics, "chaos");
        assert!(a.phases.len() > 1, "burst phases should be visible");
    }
}

#[test]
fn registry_scenarios_run_through_the_builder() {
    // Every built-in scenario name is runnable end-to-end and reported
    // under its own name.
    for name in [
        "static",
        "churn",
        "flash-crowd",
        "link-flap",
        "blackout",
        "chaos",
    ] {
        let report = Simulation::builder()
            .layered_mesh(LayeredMeshConfig::small())
            .ssd(8.0)
            .duration(Duration::from_secs(180))
            .strategy(StrategyKind::MaxEb)
            .scenario_named(name)
            .unwrap()
            .seed(5)
            .report();
        assert_eq!(report.dynamics, name);
        assert!(report.published > 0, "{name}");
        assert_eq!(report.duplicate_deliveries, 0, "{name}");
    }
    assert!(Simulation::builder().scenario_named("nope").is_err());
}

#[test]
fn static_scenario_reproduces_pre_scenario_behaviour() {
    // The scenario subsystem must not perturb the paper evaluation: a run
    // with the default (static) scenario equals one with an explicitly
    // constructed empty scenario, through both the builder and the runner.
    let cfg = quick(StrategyKind::MaxEb, true, 10.0, 77);
    assert!(cfg.scenario.is_static());
    let via_runner = run(&cfg);
    let via_builder = Simulation::builder()
        .ssd(10.0)
        .duration(Duration::from_secs(420))
        .strategy(StrategyKind::MaxEb)
        .scenario(DynamicScenario::static_scenario())
        .seed(77)
        .report();
    assert_eq!(via_runner, via_builder);
    assert_eq!(via_builder.phases.len(), 1);
    assert_eq!(via_builder.phases[0].label, "run");
}

#[test]
fn smaller_mesh_and_best_effort_scenario_work() {
    let mut workload = WorkloadConfig::paper_psd(6.0).with_duration(Duration::from_secs(300));
    workload.scenario = Scenario::BestEffort;
    let mut cfg = SimulationConfig::paper(StrategyKind::Fifo, workload, 3);
    cfg.topology = TopologySpec::LayeredMesh(LayeredMeshConfig::small());
    let report = run(&cfg);
    // Without bounds nothing can ever be late or dropped as expired.
    assert_eq!(report.late, 0);
    assert_eq!(report.dropped_expired, 0);
    assert_eq!(report.dropped_unlikely, 0);
    assert!(report.delivery_rate > 0.9);
}
