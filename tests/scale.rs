//! Scale invariants: the engine at populations far beyond the paper's 160
//! subscribers, and the equivalence of the two event-scheduler
//! implementations.
//!
//! The heavy 10k-subscriber smoke test runs in release builds only (debug
//! executions would dominate the suite); the replay-equivalence tests run
//! everywhere.

use bdps::core::config::StrategyKind;
use bdps::overlay::topology::LayeredMeshConfig;
use bdps::prelude::*;
use bdps::sim::sched::EventQueueKind;

/// The paper's mesh shape with 625 subscribers per edge broker: 10 000
/// subscribers on 32 brokers.
fn mesh_10k() -> LayeredMeshConfig {
    let mut config = LayeredMeshConfig::paper();
    config.subscribers_per_edge_broker = 625;
    config
}

fn churn_10k(queue: EventQueueKind, seed: u64) -> SimulationOutcome {
    churn_10k_layout(queue, seed, TableLayout::Dense)
}

fn churn_10k_layout(queue: EventQueueKind, seed: u64, layout: TableLayout) -> SimulationOutcome {
    Simulation::builder()
        .layered_mesh(mesh_10k())
        .ssd(6.0)
        .duration(Duration::from_secs(60))
        .strategy(StrategyKind::MaxEb)
        .scenario_named("churn")
        .expect("churn is a builtin scenario")
        .event_queue(queue)
        .table_layout(layout)
        .seed(seed)
        .build()
        .run()
}

/// 10k-subscriber churn smoke: copy conservation, no duplicate deliveries,
/// and real traffic. Release-only — a debug run of this population would
/// dominate the whole suite.
#[cfg_attr(debug_assertions, ignore = "10k-subscriber run; release builds only")]
#[test]
fn ten_thousand_subscriber_churn_keeps_invariants() {
    let outcome = churn_10k(EventQueueKind::Calendar, 1);
    outcome.check_conservation().expect("copy conservation");
    assert_eq!(outcome.tracker.duplicate_deliveries(), 0);
    assert!(outcome.published > 0);
    assert!(
        outcome.tracker.total_interested() > 10 * outcome.published,
        "10k subscribers must produce mass fan-out: {} interested for {} published",
        outcome.tracker.total_interested(),
        outcome.published
    );
    assert!(outcome.tracker.total_on_time() > 0);
    let delivered = outcome.tracker.total_on_time() + outcome.tracker.total_late();
    assert!(delivered <= outcome.tracker.total_interested());
    assert!(outcome.events_processed > 0);
    assert!(outcome.peak_pending_events > 0);
    // Interning must be active on the hot path.
    assert!(outcome.scope_interns > 0);
}

/// The same 10k churn run is bit-identical under both schedulers.
#[cfg_attr(debug_assertions, ignore = "10k-subscriber run; release builds only")]
#[test]
fn ten_thousand_subscriber_run_is_queue_independent() {
    let heap = churn_10k(EventQueueKind::BinaryHeap, 2);
    let calendar = churn_10k(EventQueueKind::Calendar, 2);
    assert_outcomes_identical(&heap, &calendar, "10k churn");
}

/// Sparse-vs-dense replay equivalence at 10k subscribers across both
/// schedulers: the sparse covering-aggregated layout must reproduce the
/// dense oracle's outcome bit-for-bit at a population where the dense table
/// replicates 320k entries — and do it with a fraction of the table memory.
#[cfg_attr(debug_assertions, ignore = "10k-subscriber run; release builds only")]
#[test]
fn ten_thousand_subscriber_sparse_layout_replays_the_dense_oracle() {
    for queue in EventQueueKind::ALL {
        let dense = churn_10k_layout(queue, 3, TableLayout::Dense);
        let sparse = churn_10k_layout(queue, 3, TableLayout::Sparse);
        assert_outcomes_identical(&dense, &sparse, &format!("10k churn ({queue:?})"));
        assert_eq!(
            dense.tracker.total_interested(),
            sparse.tracker.total_interested()
        );
        assert!(sparse.aggregate_entries > 0);
        assert_eq!(
            sparse.expanded_at_edge(),
            sparse.tracker.total_on_time() + sparse.tracker.total_late()
        );
        assert!(
            sparse.table_bytes_estimate * 5 <= dense.table_bytes_estimate,
            "sparse tables must be ≥5x smaller at 10k: {} vs {} bytes",
            sparse.table_bytes_estimate,
            dense.table_bytes_estimate
        );
        sparse.check_conservation().expect("copy conservation");
    }
}

/// The sharded executor at 10k subscribers: an 8-shard run must match the
/// sequential loop on every outcome metric at a population where each
/// window carries real load (the small-mesh equivalence suite pins
/// bit-identical reports; this pins the behaviour at bench scale).
#[cfg_attr(debug_assertions, ignore = "10k-subscriber run; release builds only")]
#[test]
fn ten_thousand_subscriber_sharded_run_matches_sequential() {
    let sequential = churn_10k_layout(EventQueueKind::Calendar, 4, TableLayout::Sparse);
    let sharded = bdps::sim::run_sharded(
        Simulation::builder()
            .layered_mesh(mesh_10k())
            .ssd(6.0)
            .duration(Duration::from_secs(60))
            .strategy(StrategyKind::MaxEb)
            .scenario_named("churn")
            .expect("churn is a builtin scenario")
            .event_queue(EventQueueKind::Calendar)
            .table_layout(TableLayout::Sparse)
            .seed(4)
            .build(),
        8,
    );
    assert_outcomes_identical(&sequential, &sharded, "10k churn sharded");
    sharded.check_conservation().expect("copy conservation");
    assert_eq!(sharded.tracker.duplicate_deliveries(), 0);
}

/// One-million-subscriber churn through the 8-shard executor: the ROADMAP's
/// production-scale north star. Ignored by default — minutes of wall time —
/// run explicitly with `cargo test --release million_subscriber -- --ignored`.
#[ignore = "minutes-long 1M-subscriber run; invoke explicitly"]
#[test]
fn million_subscriber_sharded_churn_keeps_invariants() {
    let mesh = LayeredMeshConfig {
        layer_sizes: vec![4, 125, 500, 1000],
        fan_in: vec![0, 2, 2],
        publishers_per_first_layer_broker: 1,
        subscribers_per_edge_broker: 1000,
    };
    assert_eq!(mesh.subscriber_count(), 1_000_000);
    let outcome = bdps::sim::run_sharded(
        Simulation::builder()
            .layered_mesh(mesh)
            .ssd(6.0)
            .duration(Duration::from_secs(10))
            .strategy(StrategyKind::MaxEb)
            .scenario_named("churn")
            .expect("churn is a builtin scenario")
            .table_layout(TableLayout::Sparse)
            .seed(1)
            .build(),
        8,
    );
    outcome.check_conservation().expect("copy conservation");
    assert_eq!(outcome.tracker.duplicate_deliveries(), 0);
    assert!(outcome.published > 0, "the window must admit publications");
    // Seed 1 delivers ~86k copies on time inside the short window (most of
    // the fan-out is still queued or in flight when it closes); the bound
    // only guards against the run silently delivering nothing.
    assert!(
        outcome.tracker.total_on_time() > 10_000,
        "1M subscribers must produce mass deliveries: {} on time",
        outcome.tracker.total_on_time()
    );
}

fn assert_outcomes_identical(a: &SimulationOutcome, b: &SimulationOutcome, label: &str) {
    assert_eq!(a.published, b.published, "{label}: published");
    assert_eq!(a.transmissions, b.transmissions, "{label}: transmissions");
    assert_eq!(
        a.completed_transfers, b.completed_transfers,
        "{label}: completed transfers"
    );
    assert_eq!(a.message_number(), b.message_number(), "{label}: messages");
    assert_eq!(
        a.tracker.total_on_time(),
        b.tracker.total_on_time(),
        "{label}: on-time"
    );
    assert_eq!(
        a.tracker.total_late(),
        b.tracker.total_late(),
        "{label}: late"
    );
    assert_eq!(
        a.tracker.total_earning().millis(),
        b.tracker.total_earning().millis(),
        "{label}: earning"
    );
    assert_eq!(a.queued_at_end, b.queued_at_end, "{label}: queued at end");
    assert_eq!(
        a.in_flight_at_end, b.in_flight_at_end,
        "{label}: in flight at end"
    );
    assert_eq!(a.finished_at, b.finished_at, "{label}: finish time");
    assert_eq!(
        a.events_processed, b.events_processed,
        "{label}: events processed"
    );
    assert_eq!(a.phases.len(), b.phases.len(), "{label}: phase count");
    for (pa, pb) in a.phases.iter().zip(&b.phases) {
        assert_eq!(pa.published, pb.published, "{label}: phase published");
        assert_eq!(
            pa.transmissions, pb.transmissions,
            "{label}: phase transmissions"
        );
    }
}

/// Replay equivalence on seeds 1–5: the calendar queue must reproduce the
/// heap's results bit-for-bit through the most adversarial scenario (chaos:
/// churn + bursts + link failures, i.e. every event kind and same-instant
/// event floods).
#[test]
fn heap_and_calendar_replay_identically_on_seeds_1_to_5() {
    for seed in 1..=5u64 {
        let run = |queue: EventQueueKind| {
            Simulation::builder()
                .layered_mesh(LayeredMeshConfig::small())
                .ssd(12.0)
                .duration(Duration::from_secs(180))
                .strategy(StrategyKind::MaxEbpc)
                .scenario_named("chaos")
                .expect("chaos is a builtin scenario")
                .event_queue(queue)
                .seed(seed)
                .build()
                .run()
        };
        let heap = run(EventQueueKind::BinaryHeap);
        let calendar = run(EventQueueKind::Calendar);
        assert_outcomes_identical(&heap, &calendar, &format!("chaos seed {seed}"));
    }
}

/// The queue kind threads through the config layer and round-trips.
#[test]
fn event_queue_choice_round_trips_through_config() {
    let config = Simulation::builder()
        .layered_mesh(LayeredMeshConfig::small())
        .event_queue(EventQueueKind::BinaryHeap)
        .build_config();
    assert_eq!(config.event_queue, EventQueueKind::BinaryHeap);
    let rebuilt = SimulationBuilder::from_config(&config).build_config();
    assert_eq!(rebuilt, config);
    // Default stays the calendar queue.
    let default_config = Simulation::builder().build_config();
    assert_eq!(default_config.event_queue, EventQueueKind::Calendar);
}

/// The perf counters the scale bench publishes are populated and coherent.
#[test]
fn outcome_reports_scheduler_load_counters() {
    let outcome = Simulation::builder()
        .layered_mesh(LayeredMeshConfig::small())
        .ssd(8.0)
        .duration(Duration::from_secs(120))
        .strategy(StrategyKind::Fifo)
        .seed(9)
        .build()
        .run();
    assert!(outcome.events_processed > 0);
    assert!(outcome.peak_pending_events > 0);
    assert!(outcome.scope_interns >= outcome.scope_intern_hits);
    assert!(
        outcome.scope_intern_hits > 0,
        "multi-hop forwarding must reuse interned scopes"
    );
}
