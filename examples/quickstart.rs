//! Quickstart: build the paper's pub/sub system with the fluent builder, run
//! a short simulation with the EB strategy and print the headline metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use bdps::prelude::*;

fn main() {
    // 1. The paper's 32-broker layered mesh, 4 publishers, 160 subscribers
    //    (the builder's default topology). Link transmission rates are
    //    N(mu, 20^2) ms/KB with mu ~ U[50, 100].
    // 2. The SSD workload: every subscriber asks for one of the delay classes
    //    {10 s -> price 3, 30 s -> price 2, 60 s -> price 1}; publishers emit
    //    50 KB messages at 10 messages/minute each.
    // 3. The EB (maximum Expected Benefit first) scheduling strategy with the
    //    paper's invalid-message detection threshold (epsilon = 0.05 %).
    let report = Simulation::builder()
        .ssd(10.0)
        .duration(Duration::from_secs(600))
        .strategy(StrategyKind::MaxEb)
        .seed(42)
        .report();

    println!("strategy          : {}", report.strategy);
    println!("scenario          : {}", report.scenario);
    println!("published messages: {}", report.published);
    println!("interested pairs  : {}", report.interested);
    println!("on-time deliveries: {}", report.on_time);
    println!(
        "delivery rate     : {:.1} %",
        report.delivery_rate_percent()
    );
    println!("total earning     : {:.1}", report.total_earning);
    println!("message number    : {}", report.message_number);
    println!("dropped (expired) : {}", report.dropped_expired);
    println!("dropped (unlikely): {}", report.dropped_unlikely);
    println!("mean valid delay  : {:.0} ms", report.mean_valid_delay_ms);
}
