//! Stock-ticker dissemination (the paper's PSD scenario): the *publisher*
//! knows how long a quote stays meaningful and stamps each message with an
//! allowed delay; subscribers simply want as many still-valid quotes as
//! possible.
//!
//! The example drives the broker state machine directly — without the
//! simulator — to show how the public API fits together: topology, routing,
//! subscription tables, brokers, and the scheduling decision on a busy link.
//!
//! Run with: `cargo run --release --example stock_ticker`

use bdps::core::broker::BrokerState;
use bdps::prelude::*;
use std::sync::Arc;

fn main() {
    // A small three-broker chain: exchange gateway -> regional hub -> edge.
    let mut rng = SimRng::seed_from(99);
    let mut topo = bdps::overlay::topology::Topology::line(3, &mut rng, LinkQuality::paper_random);
    topo.graph
        .attach_subscriber(BrokerId::new(2), SubscriberId::new(0));
    topo.graph
        .attach_subscriber(BrokerId::new(2), SubscriberId::new(1));
    let routing = bdps::overlay::routing::Routing::compute(&topo.graph);

    // Two subscriptions: a market maker wants every ACME trade, an analyst
    // only large trades.
    let subs = vec![
        (
            Subscription::best_effort(
                SubscriptionId::new(0),
                SubscriberId::new(0),
                Filter::from(Predicate::eq("symbol", "ACME")),
            ),
            BrokerId::new(2),
        ),
        (
            Subscription::best_effort(
                SubscriptionId::new(1),
                SubscriberId::new(1),
                Filter::new(vec![
                    Predicate::eq("symbol", "ACME"),
                    Predicate::ge("volume", 10_000.0),
                ]),
            ),
            BrokerId::new(2),
        ),
    ];

    // The gateway broker runs the EB strategy.
    let table =
        bdps::overlay::subtable::SubscriptionTable::build(BrokerId::new(0), &routing, &subs);
    let mut gateway = BrokerState::from_overlay(
        &topo.graph,
        BrokerId::new(0),
        table,
        SchedulerConfig::paper(StrategyKind::MaxEb),
    );

    // Publish three quotes with different freshness requirements (PSD bounds).
    let quotes = [
        (1u64, 9_950.0, 5u64), // small trade, 5 s of validity
        (2, 25_000.0, 20u64),  // block trade, 20 s of validity
        (3, 11_000.0, 10u64),  // medium trade, 10 s of validity
    ];
    let now = SimTime::from_millis(2);
    for (id, volume, secs) in quotes {
        let msg = Arc::new(
            Message::builder(MessageId::new(id), PublisherId::new(0))
                .publish_time(SimTime::ZERO)
                .size_kb(50.0)
                .publisher_bound(DelayBound::from_secs(secs))
                .attr("symbol", "ACME")
                .attr("volume", volume)
                .build(),
        );
        let outcome = gateway.handle_arrival(msg, now);
        println!(
            "quote {id}: matched {} downstream target(s), enqueued towards {:?}",
            gateway
                .queue(BrokerId::new(1))
                .map(|q| q.items().last().map(|m| m.targets.len()).unwrap_or(0))
                .unwrap_or(0),
            outcome.enqueued_to
        );
    }

    // The uplink towards the hub is free once: which quote goes first?
    let decision = gateway.next_to_send(BrokerId::new(1), now);
    let chosen = decision.message.expect("something to send");
    println!(
        "\nthe EB scheduler transmits quote {} first (it satisfies {} subscription(s) and still has {} of its validity left)",
        chosen.message.id,
        chosen.targets.len(),
        chosen
            .message
            .remaining_lifetime(now)
            .map(|d| d.to_string())
            .unwrap_or_else(|| "∞".into())
    );
    println!(
        "queued behind it: {} quote(s)",
        gateway.queue(BrokerId::new(1)).unwrap().len()
    );
    println!("broker counters: {:?}", gateway.counters);
}
