//! Compares all five paper strategies (EB, PC, EBPC, FIFO, RL) plus the
//! built-in `WeightedComposite` on the paper's topology under a congesting
//! PSD workload, using the fluent builder and the parallel sweep runner.
//!
//! Run with: `cargo run --release --example strategy_comparison`

use bdps::prelude::*;
use bdps::sim::runner::{sweep, SweepCell};

fn main() {
    let rate = 12.0;
    let mut strategies: Vec<StrategyHandle> =
        StrategyKind::ALL.iter().map(|&s| s.resolve()).collect();
    strategies.push(StrategyHandle::new(WeightedComposite::default()));

    let cells: Vec<SweepCell> = strategies
        .iter()
        .map(|strategy| SweepCell {
            label: strategy.label().to_string(),
            config: Simulation::builder()
                .psd(rate)
                .duration(Duration::from_secs(600))
                .strategy(strategy.clone())
                .seed(2026)
                .build_config(),
        })
        .collect();

    println!("PSD scenario, publishing rate {rate} msgs/min/publisher, 10-minute run\n");
    println!(
        "{:10} {:>14} {:>16} {:>18} {:>18}",
        "strat", "delivery (%)", "msg number", "dropped expired", "dropped unlikely"
    );
    for (label, report) in sweep(&cells, 4) {
        println!(
            "{:10} {:>14.1} {:>16} {:>18} {:>18}",
            label,
            report.delivery_rate_percent(),
            report.message_number,
            report.dropped_expired,
            report.dropped_unlikely
        );
    }
    println!(
        "\nExpected ordering under congestion: EB ≈ EBPC ≥ PC > FIFO > RL (the paper's Fig. 6a)."
    );
}
