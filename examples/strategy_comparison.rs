//! Compares all five scheduling strategies (EB, PC, EBPC, FIFO, RL) on the
//! paper's topology under a congesting PSD workload, using the parallel
//! sweep runner.
//!
//! Run with: `cargo run --release --example strategy_comparison`

use bdps::prelude::*;
use bdps::sim::runner::{sweep, SweepCell};

fn main() {
    let rate = 12.0;
    let cells: Vec<SweepCell> = StrategyKind::ALL
        .iter()
        .map(|&strategy| SweepCell {
            label: strategy.label().to_string(),
            config: SimulationConfig::paper(
                strategy,
                WorkloadConfig::paper_psd(rate).with_duration(Duration::from_secs(600)),
                2026,
            ),
        })
        .collect();

    println!("PSD scenario, publishing rate {rate} msgs/min/publisher, 10-minute run\n");
    println!("{:6} {:>14} {:>16} {:>18} {:>18}", "strat", "delivery (%)", "msg number", "dropped expired", "dropped unlikely");
    for (label, report) in sweep(&cells, 4) {
        println!(
            "{:6} {:>14.1} {:>16} {:>18} {:>18}",
            label,
            report.delivery_rate_percent(),
            report.message_number,
            report.dropped_expired,
            report.dropped_unlikely
        );
    }
    println!("\nExpected ordering under congestion: EB ≈ EBPC ≥ PC > FIFO > RL (the paper's Fig. 6a).");
}
