//! Dynamic scenarios: run the EB strategy through subscription churn, a
//! flash crowd and link failures — all in one reproducible simulation.
//!
//! The scenario subsystem turns the paper's stationary evaluation into a
//! living system: subscribers join and leave mid-run, publishers burst to a
//! multiple of their base rate, links fail and recover (copies caught in
//! flight are requeued at the sender). Everything is driven by the run's
//! seed, so the same command always prints the same numbers.
//!
//! Run with: `cargo run --release --example dynamic_scenarios`

use bdps::prelude::*;

fn main() {
    // A "chaos" scenario assembled by hand; `scenario_named("chaos")` gives
    // a canned equivalent via the ScenarioRegistry.
    let chaos = DynamicScenario::named("chaos-demo")
        // ~2 subscriptions join and ~2 leave per minute.
        .with_churn(ChurnConfig {
            joins_per_min: 2.0,
            leaves_per_min: 2.0,
        })
        // Flash crowds: calm stretches (~3 min) interrupted by ~1 min bursts
        // at 4x the base publishing rate.
        .with_bursts(BurstConfig {
            mean_calm_secs: 180.0,
            mean_burst_secs: 60.0,
            multiplier: 4.0,
        })
        // A link failure every ~2 minutes, ~30 s downtime each.
        .with_link_failures(LinkFailureConfig::flaky());

    let report = Simulation::builder()
        .ssd(10.0)
        .duration(Duration::from_secs(900))
        .strategy(StrategyKind::MaxEb)
        .scenario(chaos)
        .seed(42)
        .report();

    println!("strategy            : {}", report.strategy);
    println!("dynamics            : {}", report.dynamics);
    println!("published messages  : {}", report.published);
    println!("on-time deliveries  : {}", report.on_time);
    println!(
        "delivery rate       : {:.1} %",
        report.delivery_rate_percent()
    );
    println!("total earning       : {:.1}", report.total_earning);
    println!("requeued (link loss): {}", report.requeued);
    println!("unsubscribed drops  : {}", report.dropped_unsubscribed);
    println!(
        "duplicate deliveries: {} (single-path forwarding keeps this 0)",
        report.duplicate_deliveries
    );

    // Bursts and blackouts are visible per phase; empty phases print zeros,
    // never NaN.
    println!("\nPer-phase breakdown:\n\n{}", report.phase_table());

    // Registry-based wiring for CLI-style selection — and proof of replay:
    // the same name and seed reproduce the run bit-for-bit.
    let a = Simulation::builder()
        .ssd(10.0)
        .duration(Duration::from_secs(300))
        .strategy(StrategyKind::MaxEbpc)
        .scenario_named("link-flap")
        .expect("builtin scenario")
        .seed(7)
        .report();
    let b = Simulation::builder()
        .ssd(10.0)
        .duration(Duration::from_secs(300))
        .strategy(StrategyKind::MaxEbpc)
        .scenario_named("link-flap")
        .expect("builtin scenario")
        .seed(7)
        .report();
    assert_eq!(a, b, "same seed, same scenario => identical report");
    println!(
        "\nreplay check        : two '{}' runs with seed 7 agree exactly ({} on-time deliveries)",
        a.dynamics, a.on_time
    );
}
