//! Plugging a user-defined scheduling strategy into the simulator — without
//! touching any core crate.
//!
//! The strategy below, `DeadlineAwareValue`, is defined *in this example*:
//! it scores a message by its expected benefit per unit of transmission time
//! (a bang-for-the-buck heuristic the paper does not evaluate), with a boost
//! for messages entering their final seconds. It implements
//! [`SchedulingStrategy`], is wrapped in a [`StrategyHandle`], registered in
//! a [`StrategyRegistry`] under `"dav"`, and run through the full
//! `BrokerState`/`Simulation` pipeline next to the built-in strategies.
//!
//! Run with: `cargo run --release --example custom_strategy`

use bdps::core::metrics;
use bdps::core::strategy::ScheduleContext;
use bdps::prelude::*;
use bdps::sim::runner::{strategy_rate_grid_with, sweep};

/// Expected benefit per estimated transmission millisecond, with an urgency
/// boost once the average remaining lifetime drops under `panic_secs`.
#[derive(Debug, Clone, Copy)]
struct DeadlineAwareValue {
    panic_secs: f64,
}

impl SchedulingStrategy for DeadlineAwareValue {
    fn name(&self) -> &str {
        "DAV"
    }

    fn priority(&self, ctx: &ScheduleContext, item: &QueuedMessage) -> f64 {
        let eb =
            metrics::expected_benefit(&item.message, &item.targets, ctx.now, ctx.processing_delay);
        // Transmission cost estimate: message size at the queue's mean rate
        // (the same FT estimate the paper's PC metric uses, per KB).
        let send_ms =
            (item.message.size_kb * ctx.first_send_estimate_ms / ctx.avg_message_size_kb).max(1.0);
        let urgency_boost = {
            let rl_secs = item.avg_remaining_lifetime_ms(ctx.now) / 1_000.0;
            if rl_secs.is_finite() && rl_secs < self.panic_secs {
                2.0
            } else {
                1.0
            }
        };
        urgency_boost * eb / send_ms
    }
}

fn main() {
    // The custom strategy can be registered for name-based lookup (config
    // files, CLI flags) exactly like the built-ins...
    let mut registry = StrategyRegistry::builtin();
    registry.register("dav", || {
        StrategyHandle::new(DeadlineAwareValue { panic_secs: 5.0 })
    });
    let dav = registry.resolve("dav").expect("registered");

    // ...and dropped into the same sweep helpers as the paper strategies.
    let strategies = vec![
        StrategyKind::MaxEb.resolve(),
        dav,
        StrategyHandle::new(WeightedComposite::default()),
        StrategyKind::Fifo.resolve(),
    ];
    let cells = strategy_rate_grid_with(&strategies, &[12.0], false, 600, 2026);

    println!("PSD scenario, publishing rate 12 msgs/min/publisher, 10-minute run\n");
    println!(
        "{:10} {:>14} {:>14} {:>18}",
        "strategy", "delivery (%)", "msg number", "dropped unlikely"
    );
    for (_, report) in sweep(&cells, 4) {
        println!(
            "{:10} {:>14.1} {:>14} {:>18}",
            report.strategy,
            report.delivery_rate_percent(),
            report.message_number,
            report.dropped_unlikely
        );
    }

    // One-off runs go through the fluent builder with the same handle.
    let single = Simulation::builder()
        .ssd(10.0)
        .duration(Duration::from_secs(300))
        .strategy(DeadlineAwareValue { panic_secs: 5.0 })
        .seed(7)
        .report();
    println!(
        "\nbuilder run with {}: earning {:.1}, delivery rate {:.1} %",
        single.strategy,
        single.total_earning,
        single.delivery_rate_percent()
    );
    println!("\nNo core crate was modified: the strategy lives entirely in this example.");
}
