//! Traffic-information dissemination (the paper's motivating example for
//! subscriber-specified delays): subscribers close to an incident need the
//! update quickly, distant ones can wait — and pay less.
//!
//! This example builds a custom filter workload over road-traffic attributes,
//! registers subscriptions through the filter parser, and compares the EB
//! strategy against FIFO on the same congested network.
//!
//! Run with: `cargo run --release --example traffic_info`

use bdps::filter::parser::parse_filter;
use bdps::filter::subscription::Subscription;
use bdps::prelude::*;

fn main() {
    // A few textual subscriptions, the way an application would express them.
    let filters = [
        ("city-centre commuter", "congestion >= 7 && region < 3"),
        ("ring-road haulier", "congestion >= 5 && region >= 3"),
        ("casual traveller", "congestion >= 9"),
    ];
    println!("parsed subscriptions:");
    for (who, text) in &filters {
        let expr = parse_filter(text).expect("valid filter");
        let dnf = expr.to_dnf();
        println!("  {who:20} {text}  ->  {} conjunction(s)", dnf.len());
    }

    // Nearby subscribers demand 10 s delivery at price 3, distant ones 60 s at
    // price 1 — exactly the SSD tiering of the paper.
    let tiers = QosClass::paper_tiers();
    let example = Subscription::with_qos(
        SubscriptionId::new(0),
        SubscriberId::new(0),
        parse_filter("congestion >= 7 && region < 3")
            .unwrap()
            .to_dnf()
            .remove(0),
        tiers[0],
    );
    println!("\nexample subscription: {example}\n");

    // Run the paper's SSD workload at a congesting rate under both strategies.
    for strategy in [StrategyKind::MaxEb, StrategyKind::Fifo] {
        let config = SimulationConfig::paper(
            strategy,
            WorkloadConfig::paper_ssd(12.0).with_duration(Duration::from_secs(600)),
            7,
        );
        let report = bdps::sim::runner::run(&config);
        println!(
            "{:4}  earning {:8.1}  delivery rate {:5.1} %  traffic {:6} receptions",
            report.strategy,
            report.total_earning,
            report.delivery_rate_percent(),
            report.message_number
        );
    }
    println!("\nThe EB strategy earns substantially more on the same network because it spends bandwidth on messages that can still meet their bound.");
}
